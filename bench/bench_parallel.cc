// Scaling of the parallel clustering & matching kernels.
//
// Times the four pool-accelerated hot paths — grid rasterization, Forgy
// re-assignment, exact pairwise agglomeration, and batch event matching —
// at the configured thread count, and (with --verify) checks that the
// outputs are byte-identical to a --threads=1 run, which is the layer's
// core guarantee (util/thread_pool.h).
//
// Typical use:
//   bench_parallel --threads=1
//   bench_parallel --threads=4     # expect ~2-4x on the clustering phases
//
// Flags: --subs=N (default 2000) --events=N (default 4000) --cells=N
//        (default 1200) --groups=K (default 100) --dims=D (default 0 =
//        stock 4-attribute workload; D>0 = parametric D-dim workload)
//        --seed=S --threads=N --verify=BOOL (default true)
//        --report_tag=STR (suffix for BENCH_parallel_STR.json, so sweeps
//        keep one JSON per configuration)
//        --require_batch_speedup=X (CI gate: exit 1 if the batch-matching
//        speedup vs --threads=1 is below X; exit 77 = "skip" when the host
//        cannot run 2 hardware threads, where wall-clock speedup >1 is
//        physically impossible)
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "core/kmeans.h"
#include "core/pairwise.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "obs/clock.h"

namespace pubsub {
namespace {

struct PhaseResult {
  double seconds = 0.0;
  // Fingerprint of the phase output, for the cross-thread-count check.
  Assignment assignment;
  ClusteredCosts costs;
};

// Runs every phase once at the pool's current size.  The scenario is
// rebuilt from the seed each call (Scenario is move-only); construction is
// deterministic, so both runs see the same workload.
std::vector<PhaseResult> RunPhases(int subs, std::size_t events, int dims,
                                   std::size_t max_cells, std::size_t K,
                                   std::uint64_t seed, double* grid_seconds) {
  StopwatchClock grid_watch;
  bench::Pipeline p(bench::MakeDimsScenario(dims, subs, seed), events, seed + 1);
  *grid_seconds = grid_watch.elapsed_seconds();

  const std::vector<ClusterCell> cells = p.grid.top_cells(max_cells);
  std::vector<PhaseResult> out;

  {
    PhaseResult r;
    KMeansOptions opt;
    opt.variant = KMeansVariant::kForgy;
    StopwatchClock watch;
    r.assignment = KMeansCluster(cells, K, opt).assignment;
    r.seconds = watch.elapsed_seconds();
    out.push_back(std::move(r));
  }
  {
    PhaseResult r;
    StopwatchClock watch;
    r.assignment = PairwiseCluster(cells, K);
    r.seconds = watch.elapsed_seconds();
    out.push_back(std::move(r));
  }
  {
    PhaseResult r;
    const GridMatcher matcher(p.grid, out[0].assignment, static_cast<int>(K));
    StopwatchClock watch;
    r.costs = EvaluateMatcher(p.sim, p.events, MatcherFn(matcher));
    r.seconds = watch.elapsed_seconds();
    out.push_back(std::move(r));
  }
  return out;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int threads = ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 2000));
  const auto events = static_cast<std::size_t>(flags.get_int("events", 4000));
  const auto max_cells = static_cast<std::size_t>(flags.get_int("cells", 1200));
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 100));
  const auto dims = static_cast<int>(flags.get_int("dims", 0));
  const bool verify = flags.get_bool("verify", true);
  const std::string tag = flags.get("report_tag", "");
  const double require_speedup = flags.get_double("require_batch_speedup", 0.0);

  if (require_speedup > 0.0 && std::thread::hardware_concurrency() < 2) {
    // Wall-clock parallel speedup >1 is impossible on a single hardware
    // thread; 77 is CTest's SKIP_RETURN_CODE.  Checked before the phases
    // run so a single-core CI host skips in milliseconds.
    std::printf("perf gate: SKIPPED (hardware_concurrency < 2)\n");
    return 77;
  }

  double grid_s = 0.0;
  const std::vector<PhaseResult> timed =
      RunPhases(subs, events, dims, max_cells, K, seed, &grid_s);

  double grid_ref_s = 0.0;
  std::vector<PhaseResult> ref;
  if (verify && threads != 1) {
    ThreadPool::global().set_num_threads(1);
    ref = RunPhases(subs, events, dims, max_cells, K, seed, &grid_ref_s);
    ThreadPool::global().set_num_threads(threads);
  }

  bench::BenchReport report(tag.empty() ? "parallel" : "parallel_" + tag);
  report.set_config("subs", subs);
  report.set_config("events", static_cast<long long>(events));
  report.set_config("dims", dims);
  report.set_config("threads", threads);
  // Hardware context for the speedup columns: a consumer reading
  // forgy_speedup < 1 must be able to see it was measured on a host that
  // cannot run two lanes at once (the gate itself skips there).
  report.set_config("hardware_threads",
                    static_cast<int>(std::thread::hardware_concurrency()));

  const char* names[] = {"forgy k-means", "pairwise", "batch matching"};
  const char* keys[] = {"forgy", "pairwise", "batch_matching"};
  TextTable table({"phase", "seconds", "vs 1 thread"});
  table.row().cell("grid build").cell(grid_s, 4).cell(
      ref.empty() ? 1.0 : grid_ref_s / grid_s, 2);
  report.add("grid_build_seconds", grid_s, "s");
  for (std::size_t i = 0; i < timed.size(); ++i) {
    table.row().cell(names[i]).cell(timed[i].seconds, 4).cell(
        ref.empty() ? 1.0 : ref[i].seconds / timed[i].seconds, 2);
    report.add(std::string(keys[i]) + "_seconds", timed[i].seconds, "s");
    if (!ref.empty())
      report.add(std::string(keys[i]) + "_speedup",
                 ref[i].seconds / timed[i].seconds, "x");
  }
  std::printf("parallel kernel scaling (subs=%d, events=%zu, cells=%zu, K=%zu, "
              "dims=%d, threads=%d):\n\n%s",
              subs, events, max_cells, K, dims, threads,
              table.to_string().c_str());

  if (!ref.empty()) {
    bool identical = true;
    for (std::size_t i = 0; i < timed.size(); ++i) {
      if (timed[i].assignment != ref[i].assignment) identical = false;
      if (timed[i].costs.network != ref[i].costs.network ||
          timed[i].costs.applevel != ref[i].costs.applevel ||
          timed[i].costs.wasted_deliveries != ref[i].costs.wasted_deliveries)
        identical = false;
    }
    std::printf("\ndeterminism check vs --threads=1: %s\n",
                identical ? "bit-identical" : "MISMATCH (bug!)");
    if (!identical) return 1;
  }

  if (require_speedup > 0.0) {
    if (ref.empty()) {
      std::fprintf(stderr, "perf gate needs --verify=true and --threads>1\n");
      return 1;
    }
    const double speedup = ref[2].seconds / timed[2].seconds;
    std::printf("\nperf gate: batch-matching speedup %.2fx (require >= %.2fx)"
                " -> %s\n",
                speedup, require_speedup,
                speedup >= require_speedup ? "PASS" : "FAIL");
    if (speedup < require_speedup) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
