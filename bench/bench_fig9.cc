// Reproduces Figure 9: the algorithm ranking is stable across network
// topologies — the same comparison run on two networks generated with
// different random seeds (same parameters).
//
// Expected shape (paper): per-algorithm curves shift a little, but the
// ordering (iterative above hierarchical) and the ~60 % plateau of the
// leaders persist.
//
// Also includes the last-mile ablation (§6 discussion item 2): the same
// workload on a topology whose subscriber hosts sit behind dedicated
// higher-cost access links.
//
// Flags: --events=N (default 300) --subs=N (default 1000)
//        --cells=N (default 6000) --seeds=a,b (two scenario seeds)
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace pubsub {
namespace {

void RunOne(const char* label, const char* key, Scenario scenario,
            const Flags& flags, std::uint64_t seed,
            bench::BenchReport& report) {
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const auto cells = static_cast<std::size_t>(flags.get_int("cells", 6000));
  const auto pairs_cells = static_cast<std::size_t>(flags.get_int("pairs_cells", 2000));

  bench::Pipeline p(std::move(scenario), num_events, seed + 1);
  bench::PrintBaselines(p, label);

  TextTable table({"K", "forgy", "kmeans", "mst", "approx-pairs"});
  for (const std::size_t k : {20u, 60u, 100u}) {
    auto row = table.row();
    row.cell(static_cast<long long>(k));
    for (const char* name : {"forgy", "kmeans", "mst", "approx-pairs"}) {
      const std::size_t budget =
          std::string(name) == "approx-pairs" ? pairs_cells : cells;
      const double improvement =
          bench::EvaluateGridAlgorithm(p, GridAlgorithmByName(name), k, budget,
                                       seed + 2)
              .improvement_net;
      row.cell(improvement, 1);
      if (k == 100u)
        report.add(std::string(key) + "_" + name + "_K100", improvement, "%");
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto seed_a = static_cast<std::uint64_t>(flags.get_int("seed_a", 7));
  const auto seed_b = static_cast<std::uint64_t>(flags.get_int("seed_b", 1234));

  bench::BenchReport report("fig9");
  report.set_config("subs", subs);

  std::printf("=== Figure 9: same model, two random networks ===\n\n");
  RunOne("network A", "netA",
         MakeStockScenario(subs, PublicationHotSpots::kOne, seed_a), flags,
         seed_a, report);
  RunOne("network B", "netB",
         MakeStockScenario(subs, PublicationHotSpots::kOne, seed_b), flags,
         seed_b, report);

  std::printf("=== Last-mile ablation (§6 item 2): hosts behind cost-4 "
              "access links ===\n\n");
  TransitStubParams shape = PaperNetSection5();
  shape.last_mile_cost = 4.0;
  RunOne("network A + last-mile", "netA_lastmile",
         MakeStockScenario(subs, PublicationHotSpots::kOne, seed_a, {}, shape),
         flags, seed_a, report);
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
