// Machine-readable results for the bench_* binaries (telemetry issue
// satellite): alongside its human-oriented table, every benchmark writes a
// BENCH_<name>.json so sweeps and CI can diff numbers without scraping
// stdout.
//
//   bench::BenchReport report("fig7");
//   report.set_config("events", "300");
//   report.add("forgy_improvement_net", 63.1, "%");
//   ...
//   // written to $BENCH_OUT_DIR/BENCH_fig7.json (or ./BENCH_fig7.json)
//   // by the destructor, or explicitly via write().
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace pubsub::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() {
    if (!written_) write();
  }

  void set_config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, value);
  }
  void set_config(const std::string& key, long long value) {
    set_config(key, std::to_string(value));
  }

  void add(const std::string& metric, double value, std::string unit = "") {
    metrics_.push_back({metric, value, std::move(unit)});
  }

  // Serializes to BENCH_<name>.json under $BENCH_OUT_DIR (cwd when unset).
  // Returns the path written, or "" on failure (a benchmark should never
  // die over its report; the error goes to stderr).
  std::string write() {
    written_ = true;
    std::string dir = ".";
    if (const char* env = std::getenv("BENCH_OUT_DIR"); env != nullptr && *env)
      dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
      return "";
    }
    os << "{\n  \"bench\": \"" << Escape(name_) << "\",\n  \"config\": {";
    for (std::size_t i = 0; i < config_.size(); ++i)
      os << (i ? ", " : "") << '"' << Escape(config_[i].first) << "\": \""
         << Escape(config_[i].second) << '"';
    os << "},\n  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      char value[64];
      std::snprintf(value, sizeof value, "%.17g", m.value);
      os << "    {\"name\": \"" << Escape(m.name) << "\", \"value\": " << value
         << ", \"unit\": \"" << Escape(m.unit) << "\"}"
         << (i + 1 < metrics_.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    return path;
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        out += "?";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Metric> metrics_;
  bool written_ = false;
};

}  // namespace pubsub::bench
