#include "table_common.h"

#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.h"
#include "sim/delivery.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace pubsub::bench {
namespace {

struct RowSpec {
  const char* net_name;
  TransitStubParams shape;
  int subscriptions;
  Section3Params::Tail dist;
};

}  // namespace

int RunBaselineTable(int argc, char** argv, double default_regionalism,
                     const char* bench_name) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 400));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double regionalism = flags.get_double("regionalism", default_regionalism);

  BenchReport report(bench_name);
  report.set_config("events", static_cast<long long>(num_events));
  report.set_config("seed", static_cast<long long>(seed));
  report.set_config("regionalism", std::to_string(regionalism));

  // The paper's row grid (Tables 1 and 2 share it modulo a few rows; we
  // print the union).
  const std::vector<RowSpec> rows = {
      {"100", PaperNet100(), 5000, Section3Params::Tail::kUniform},
      {"100", PaperNet100(), 5000, Section3Params::Tail::kGaussian},
      {"100", PaperNet100(), 1000, Section3Params::Tail::kUniform},
      {"100", PaperNet100(), 1000, Section3Params::Tail::kGaussian},
      {"100", PaperNet100(), 80, Section3Params::Tail::kUniform},
      {"100", PaperNet100(), 80, Section3Params::Tail::kGaussian},
      {"300", PaperNet300(), 5000, Section3Params::Tail::kUniform},
      {"300", PaperNet300(), 5000, Section3Params::Tail::kGaussian},
      {"300", PaperNet300(), 1000, Section3Params::Tail::kUniform},
      {"300", PaperNet300(), 1000, Section3Params::Tail::kGaussian},
      {"300", PaperNet300(), 350, Section3Params::Tail::kUniform},
      {"300", PaperNet300(), 80, Section3Params::Tail::kGaussian},
      {"600", PaperNet600(), 10000, Section3Params::Tail::kUniform},
      {"600", PaperNet600(), 10000, Section3Params::Tail::kGaussian},
      {"600", PaperNet600(), 5000, Section3Params::Tail::kUniform},
      {"600", PaperNet600(), 5000, Section3Params::Tail::kGaussian},
      {"600", PaperNet600(), 1000, Section3Params::Tail::kUniform},
      {"600", PaperNet600(), 1000, Section3Params::Tail::kGaussian},
  };

  std::printf("Baseline delivery costs, regionalism degree %.1f "
              "(paper Table %s)\n\n",
              regionalism, regionalism > 0 ? "1" : "2");

  TextTable table({"Node", "Sub'n", "Dist'n", "Unicast", "Broadcast", "Ideal",
                   "Uni/Ideal", "Bcast/Ideal"});
  for (const RowSpec& row : rows) {
    Section3Params params;
    params.regionalism = regionalism;
    params.subscription_tail = row.dist;
    params.publication_tail = row.dist;
    const Scenario s = MakeSection3Scenario(row.shape, row.subscriptions, params, seed);
    DeliverySimulator sim(s.net.graph, s.workload);
    Rng rng(seed + 7);
    const auto events = SampleEvents(sim, *s.pub, num_events, rng);
    const BaselineCosts base = EvaluateBaselines(sim, events);

    const char* dist =
        row.dist == Section3Params::Tail::kUniform ? "uniform" : "gaussian";
    table.row()
        .cell(row.net_name)
        .cell(static_cast<long long>(row.subscriptions))
        .cell(dist)
        .cell(base.unicast, 0)
        .cell(base.broadcast, 0)
        .cell(base.ideal, 0)
        .cell(base.unicast / base.ideal, 2)
        .cell(base.broadcast / base.ideal, 2);

    const std::string key = std::string(row.net_name) + "_" +
                            std::to_string(row.subscriptions) + "_" + dist;
    report.add(key + "_unicast", base.unicast, "cost");
    report.add(key + "_broadcast", base.broadcast, "cost");
    report.add(key + "_ideal", base.ideal, "cost");
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("(costs are totals over %zu events; ratios are the shape "
              "comparison points)\n",
              num_events);
  return 0;
}

}  // namespace pubsub::bench
