// Dimensionality scaling ablation (paper §5.2: "Cell-based clustering
// works well when the dimensionality of the event space is not too high …
// We leave the high-dimensional case for future study").
//
// Sweeps the number of event-space attributes at a fixed attribute domain
// and measures where the grid framework starts to hurt: lattice size,
// hyper-cell count, grid build time, and Forgy quality at a fixed cell
// budget.
//
// Expected shape: the lattice grows geometrically with dimensionality; the
// fed-cell budget covers a vanishing fraction of it, so the unmatched-cell
// unicast fallback erodes improvement — the paper's stated limitation.
//
// Flags: --events=N (default 300) --subs=N (default 800) --seed=S
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_report.h"
#include "core/algorithms.h"
#include "core/grid.h"
#include "core/matching.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"
#include "obs/clock.h"
#include "workload/interval_gen.h"

namespace pubsub {
namespace {

// A d-dimensional synthetic workload: every attribute uses the §5.1
// price-style parametric intervals; publications are one-mode gaussians.
Workload MakeWorkload(const TransitStubNetwork& net, int dims, int domain,
                      int subs, Rng& rng) {
  std::vector<DimensionSpec> specs;
  for (int d = 0; d < dims; ++d)
    specs.push_back(DimensionSpec{"a" + std::to_string(d), domain});
  Workload wl;
  wl.space = EventSpace(std::move(specs));

  const Interval attr_domain(-1.0, static_cast<double>(domain - 1));
  const ParametricIntervalSpec spec{0.25, 0.1, 0.1, 5, 1, 5, 1, 5, 2, 3, 1, false};
  const std::vector<NodeId> hosts = net.host_nodes();
  for (int i = 0; i < subs; ++i) {
    Subscriber s;
    s.node = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    std::vector<Interval> ivals;
    for (int d = 0; d < dims; ++d)
      ivals.push_back(SampleParametricInterval(spec, attr_domain, rng));
    s.interest = Rect(std::move(ivals));
    wl.subscribers.push_back(std::move(s));
  }
  return wl;
}

std::unique_ptr<PublicationModel> MakeModel(const TransitStubNetwork& net,
                                            const Workload& wl, int domain) {
  std::vector<Marginal1D> marginals;
  for (std::size_t d = 0; d < wl.space.dims(); ++d)
    marginals.push_back(Marginal1D::Gaussian(GaussianMixture1D::Single(5, 2), domain));
  return std::make_unique<ProductPublicationModel>(wl.space, std::move(marginals),
                                                   net.host_nodes());
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 800));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const std::size_t K = 80;
  const std::size_t budget = 6000;
  const int domain = 11;  // values 0..10 per attribute

  Rng net_rng(seed);
  const TransitStubNetwork net = GenerateTransitStub(PaperNetSection5(), net_rng);

  bench::BenchReport report("dimensionality");
  report.set_config("events", static_cast<long long>(num_events));
  report.set_config("subs", subs);
  report.set_config("groups", static_cast<long long>(K));

  TextTable table({"dims", "lattice", "hyper-cells", "grid build s",
                   "improvement%", "fallback events"});
  for (const int dims : {2, 3, 4, 5, 6}) {
    Rng rng(seed + static_cast<std::uint64_t>(dims));
    const Workload wl = MakeWorkload(net, dims, domain, subs, rng);
    const auto model = MakeModel(net, wl, domain);

    StopwatchClock watch;
    const Grid grid(wl, *model);
    const double build_s = watch.elapsed_seconds();

    DeliverySimulator sim(net.graph, wl);
    Rng ev_rng(seed + 100 + static_cast<std::uint64_t>(dims));
    const auto events = SampleEvents(sim, *model, num_events, ev_rng);
    const BaselineCosts base = EvaluateBaselines(sim, events);

    Rng algo_rng(seed + 200);
    const Assignment assignment =
        GridAlgorithmByName("forgy").run(grid.top_cells(budget), K, algo_rng);
    const GridMatcher matcher(grid, assignment, static_cast<int>(K));
    const ClusteredCosts c = EvaluateMatcher(sim, events, MatcherFn(matcher));

    table.row()
        .cell(static_cast<long long>(dims))
        .cell(static_cast<long long>(grid.num_lattice_cells()))
        .cell(grid.hyper_cells().size())
        .cell(build_s, 2)
        .cell(ImprovementPercent(c.network, base), 1)
        .cell(c.unicast_events);
    const std::string prefix = "dims" + std::to_string(dims);
    report.add(prefix + "_grid_build_s", build_s, "s");
    report.add(prefix + "_improvement", ImprovementPercent(c.network, base), "%");
    report.add(prefix + "_fallback_events",
               static_cast<double>(c.unicast_events), "events");
  }
  std::printf("grid framework vs event-space dimensionality "
              "(domain %d per attribute, %zu-cell budget, K=%zu):\n\n%s",
              domain, budget, K, table.to_string().c_str());
  std::printf("\n(the growing unicast fallback is the paper's high-"
              "dimensionality limitation)\n");
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
