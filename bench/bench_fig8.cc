// Reproduces Figure 8: sensitivity of the No-Loss algorithm to its two
// parameters — the number of rectangles kept after each intersection round
// and the number of iterations.
//
// Expected shape (paper): improvement grows with both knobs, with
// diminishing returns (the paper ran 5000 rectangles / 8 iterations).
//
// Flags: --events=N (default 300) --subs=N (default 1000) --seed=S
//        --groups=K (default 100)
#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace pubsub {
namespace {

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 100));

  bench::BenchReport report("fig8");
  report.set_config("events", static_cast<long long>(num_events));
  report.set_config("subs", subs);
  report.set_config("groups", static_cast<long long>(K));

  bench::Pipeline p(MakeStockScenario(subs, PublicationHotSpots::kOne, seed),
                    num_events, seed + 1);
  bench::PrintBaselines(p, "fig8 baselines");
  std::printf("\n--- improvement vs rectangles kept (8 iterations, K=%zu) ---\n", K);

  TextTable by_rect({"rectangles", "improvement%", "cluster_s", "areas"});
  for (const std::size_t n : {50u, 100u, 250u, 500u, 1000u, 2000u, 5000u}) {
    NoLossOptions opt;
    opt.max_rectangles = n;
    opt.iterations = 8;
    StopwatchClock watch;
    const NoLossResult r = NoLossCluster(p.scenario.workload, *p.scenario.pub, opt);
    const double secs = watch.elapsed_seconds();
    const bench::EvalResult e = bench::EvaluateNoLoss(p, r, K, secs);
    by_rect.row()
        .cell(static_cast<long long>(n))
        .cell(e.improvement_net, 1)
        .cell(secs, 2)
        .cell(r.groups.size());
    report.add("rect" + std::to_string(n) + "_improvement",
               e.improvement_net, "%");
  }
  std::printf("%s", by_rect.to_string().c_str());

  std::printf("\n--- improvement vs iterations (5000 rectangles, K=%zu) ---\n", K);
  TextTable by_iter({"iterations", "improvement%", "cluster_s", "areas"});
  for (const std::size_t iters : {0u, 1u, 2u, 3u, 4u, 6u, 8u}) {
    NoLossOptions opt;
    opt.max_rectangles = 5000;
    opt.iterations = iters;
    StopwatchClock watch;
    const NoLossResult r = NoLossCluster(p.scenario.workload, *p.scenario.pub, opt);
    const double secs = watch.elapsed_seconds();
    const bench::EvalResult e = bench::EvaluateNoLoss(p, r, K, secs);
    by_iter.row()
        .cell(static_cast<long long>(iters))
        .cell(e.improvement_net, 1)
        .cell(secs, 2)
        .cell(r.groups.size());
    report.add("iter" + std::to_string(iters) + "_improvement",
               e.improvement_net, "%");
  }
  std::printf("%s", by_iter.to_string().c_str());
  std::printf("(no-loss deliveries are waste-free by construction; the knobs "
              "trade clustering time for coverage)\n");
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
