// Storage-tier sweep (docs/STORAGE.md): hit rate and query throughput of a
// disk-backed PagedRTree as --buffer-pages sweeps from "far below the
// working set" to "everything resident", against an in-memory baseline.
//
// The workload deliberately sizes the subscription set beyond the smallest
// pool (8000 subs at --page_size=1024 is ~1200 node pages vs 8 frames), so
// the small-pool rows show the miss-dominated regime and the large-pool
// rows converge on the all-hits regime.  Two optional gates back the
// StoragePerfSmoke CTest entry:
//
//   --require_hit_ratio=R   warm hit ratio of the *largest* pool >= R
//   --require_mem_ratio=R   warm disk throughput >= R x mem throughput
//
// Exit 77 (CTest SKIP_RETURN_CODE) when the timed passes are inside timer
// noise and the ratios would be meaningless.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_report.h"
#include "geometry/rect.h"
#include "index/paged_rtree.h"
#include "obs/clock.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "util/flags.h"

namespace pubsub {
namespace {

std::vector<std::size_t> ParsePoolList(const std::string& csv) {
  std::vector<std::size_t> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ','))
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoul(tok)));
  return out;
}

Rect RandRect(std::mt19937_64& rng, int dims, int domain) {
  std::vector<Interval> ivals;
  for (int d = 0; d < dims; ++d) {
    double a = static_cast<double>(rng() % static_cast<unsigned>(domain));
    double b = static_cast<double>(rng() % static_cast<unsigned>(domain));
    if (a > b) std::swap(a, b);
    ivals.emplace_back(a - 1.0, b);
  }
  return Rect(std::move(ivals));
}

// One full query pass: `queries` seeded stab probes.  The seed is fixed per
// call so the warm-up pass and the timed pass touch the same pages in the
// same order — the timed pass measures a steady-state pool, not a cold one.
std::size_t QueryPass(const PagedRTree& tree, int queries, int dims,
                      int domain, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int> out;
  std::size_t matched = 0;
  for (int i = 0; i < queries; ++i) {
    Point p;
    for (int d = 0; d < dims; ++d)
      p.push_back(static_cast<double>(rng() % static_cast<unsigned>(domain)));
    out.clear();
    tree.stab(p, out);
    matched += out.size();
  }
  return matched;
}

struct PassResult {
  double seconds = 0.0;
  double hit_ratio = 0.0;  // over the timed pass only
  std::size_t matched = 0;
};

PassResult TimedPass(const PagedRTree& tree, BufferPool& pool, int queries,
                     int dims, int domain, std::uint64_t seed) {
  const std::uint64_t hits0 = pool.hits();
  const std::uint64_t miss0 = pool.misses();
  StopwatchClock watch;
  PassResult r;
  r.matched = QueryPass(tree, queries, dims, domain, seed);
  r.seconds = watch.elapsed_seconds();
  const double hits = static_cast<double>(pool.hits() - hits0);
  const double misses = static_cast<double>(pool.misses() - miss0);
  r.hit_ratio = hits + misses > 0.0 ? hits / (hits + misses) : 1.0;
  return r;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int subs = static_cast<int>(flags.get_int("subs", 8000));
  const int dims = static_cast<int>(flags.get_int("dims", 2));
  const int domain = static_cast<int>(flags.get_int("domain", 1000));
  const int queries = static_cast<int>(flags.get_int("queries", 3000));
  const auto page_size =
      static_cast<std::uint32_t>(flags.get_int("page_size", 1024));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::vector<std::size_t> pool_sizes =
      ParsePoolList(flags.get("buffer_pages_list", "8,32,128,512"));
  const double require_hit = flags.get_double("require_hit_ratio", 0.0);
  const double require_mem = flags.get_double("require_mem_ratio", 0.0);
  // Below this a timed pass is timer jitter, not signal.
  constexpr double kNoiseFloorSec = 0.005;

  bench::BenchReport report("storage");
  report.set_config("subs", subs);
  report.set_config("dims", dims);
  report.set_config("queries", queries);
  report.set_config("page_size", static_cast<long long>(page_size));
  report.set_config("buffer_pages_list",
                    flags.get("buffer_pages_list", "8,32,128,512"));

  std::mt19937_64 rng(seed);
  std::vector<std::pair<Rect, int>> items;
  items.reserve(static_cast<std::size_t>(subs));
  for (int i = 0; i < subs; ++i)
    items.emplace_back(RandRect(rng, dims, domain), i);

  // Build the page file once; every pool size reopens this same image.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("bench_storage_" + std::to_string(::getpid()) + ".pages"))
          .string();
  {
    DiskStorageManager::Options sopts;
    sopts.page_size = page_size;
    auto sm = DiskStorageManager::Create(path, sopts);
    BufferPool pool(sm.get(), {/*capacity=*/static_cast<std::size_t>(subs)});
    PagedRTree tree = PagedRTree::BulkLoad(&pool, items, dims);
    tree.sync();
  }
  const std::size_t file_pages =
      std::filesystem::file_size(path) / page_size - 1;
  std::printf("storage sweep: %d subs, %d dims, %zu node pages of %u bytes, "
              "%d stab queries per pass\n\n",
              subs, dims, file_pages, page_size, queries);

  // In-memory baseline: same tree, MemoryStorageManager, everything-resident
  // pool.  Its warm pass is the throughput yardstick for --require_mem_ratio.
  double mem_qps = 0.0;
  std::size_t mem_matched = 0;
  {
    MemoryStorageManager sm(page_size);
    BufferPool pool(&sm, {static_cast<std::size_t>(subs)});
    PagedRTree tree = PagedRTree::BulkLoad(&pool, items, dims);
    QueryPass(tree, queries, dims, domain, seed + 1);  // warm up
    const PassResult r = TimedPass(tree, pool, queries, dims, domain, seed + 1);
    mem_matched = r.matched;
    mem_qps = r.seconds > 0.0 ? queries / r.seconds : 0.0;
    std::printf("%12s  %10s  %9s  %12s  %9s\n", "buffer_pages", "hit_ratio",
                "evictions", "queries/s", "vs mem");
    std::printf("%12s  %10.4f  %9llu  %12.0f  %9s\n", "mem",
                r.hit_ratio, static_cast<unsigned long long>(pool.evictions()),
                mem_qps, "1.00x");
    if (require_mem > 0.0 && r.seconds < kNoiseFloorSec) {
      std::printf("\nstorage perf gate: SKIPPED (mem pass %.1fms is inside "
                  "timer noise)\n", r.seconds * 1e3);
      std::filesystem::remove(path);
      return 77;
    }
    report.add("mem_queries_per_sec", mem_qps, "queries/s");
  }

  bool ok = true;
  double last_hit_ratio = 0.0;
  double last_disk_qps = 0.0;
  double last_seconds = 0.0;
  for (const std::size_t buffer_pages : pool_sizes) {
    DiskStorageManager::Options sopts;
    sopts.page_size = page_size;
    auto sm = DiskStorageManager::Open(path, sopts);
    BufferPool pool(sm.get(), {buffer_pages});
    PagedRTree tree = PagedRTree::Open(&pool);
    if (tree.size() != static_cast<std::size_t>(subs)) {
      std::fprintf(stderr, "reopened tree lost entries: %zu != %d\n",
                   tree.size(), subs);
      return 1;
    }
    QueryPass(tree, queries, dims, domain, seed + 1);  // warm up
    const PassResult r = TimedPass(tree, pool, queries, dims, domain, seed + 1);
    if (r.matched != mem_matched) {
      std::fprintf(stderr, "disk pass diverged from mem baseline: %zu != %zu "
                   "matches\n", r.matched, mem_matched);
      return 1;
    }
    const double qps = r.seconds > 0.0 ? queries / r.seconds : 0.0;
    std::printf("%12zu  %10.4f  %9llu  %12.0f  %8.2fx\n", buffer_pages,
                r.hit_ratio, static_cast<unsigned long long>(pool.evictions()),
                qps, mem_qps > 0.0 ? qps / mem_qps : 0.0);
    const std::string tag = "bp" + std::to_string(buffer_pages);
    report.add("hit_ratio_" + tag, r.hit_ratio, "ratio");
    report.add("queries_per_sec_" + tag, qps, "queries/s");
    last_hit_ratio = r.hit_ratio;
    last_disk_qps = qps;
    last_seconds = r.seconds;
  }
  std::filesystem::remove(path);

  // Gates apply to the final (largest) pool: the row that should be warm.
  if (require_hit > 0.0 || require_mem > 0.0) {
    if (last_seconds < kNoiseFloorSec) {
      std::printf("\nstorage perf gate: SKIPPED (disk pass %.1fms is inside "
                  "timer noise)\n", last_seconds * 1e3);
      return 77;
    }
    const double mem_ratio = mem_qps > 0.0 ? last_disk_qps / mem_qps : 0.0;
    if (require_hit > 0.0) {
      const bool pass = last_hit_ratio >= require_hit;
      std::printf("\nhit-ratio gate: %.4f >= %.4f : %s\n", last_hit_ratio,
                  require_hit, pass ? "PASS" : "FAIL");
      ok = ok && pass;
    }
    if (require_mem > 0.0) {
      const bool pass = mem_ratio >= require_mem;
      std::printf("mem-ratio gate: %.2fx >= %.2fx : %s\n", mem_ratio,
                  require_mem, pass ? "PASS" : "FAIL");
      ok = ok && pass;
    }
  }
  const std::string json = report.write();
  if (!json.empty()) std::printf("\nreport: %s\n", json.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
