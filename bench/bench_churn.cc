// Subscription-churn scaling of the covering table + incremental slab
// index (ISSUE 6 tentpole): update latency must be a function of *distinct
// interest*, not of the subscriber population.
//
// The workload models the aggregation regime of content-based pub/sub at
// scale: N subscribers draw their interest rectangles from a pool of D
// distinct rectangles (N >> D).  The covering table dedups equal
// rectangles and parks contained ones as covered children, so the backing
// slab index holds at most D entries regardless of N — and a subscription
// update is a refcount move that usually never touches the index at all.
//
// Two measurements:
//   1. A --subs_list sweep (default 10k / 100k / 1M) timing random updates
//      at each population.  The per-op latency column should be flat.
//   2. At --subs, the same update stream applied two ways: incremental
//      slab maintenance (the delta path) vs a full from-scratch index
//      rebuild after every op (what shipping without the tentpole would
//      cost).  --require_incremental_speedup=X gates the ratio (CTest
//      ChurnPerfSmoke; exit 77 = skip when the rebuild baseline is too
//      fast to time reliably, e.g. a tiny --distinct).
//
// Typical use:
//   bench_churn                        # full sweep, writes BENCH_churn.json
//   bench_churn --subs=100000 --updates=5000 --rebuild_ops=50
//               --require_incremental_speedup=10     # the CI gate
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_report.h"
#include "core/covering.h"
#include "geometry/rect.h"
#include "index/slab_index.h"
#include "obs/clock.h"
#include "util/flags.h"

namespace pubsub {
namespace {

// Distinct-interest pool: random axis-aligned rects over [0, 100]^dims
// with mixed widths, so dedup, containment and promotion all engage.
std::vector<Rect> MakePool(std::size_t distinct, int dims,
                           std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> origin(0.0, 100.0);
  std::uniform_real_distribution<double> width(0.5, 25.0);
  std::vector<Rect> pool;
  pool.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i) {
    std::vector<Interval> ivals;
    for (int d = 0; d < dims; ++d) {
      const double lo = origin(rng);
      ivals.emplace_back(lo, lo + width(rng));
    }
    pool.emplace_back(std::move(ivals));
  }
  return pool;
}

struct ChurnSystem {
  CoveringTable table;
  SlabIndex slab;
  CoveringTable::Delta delta;

  void apply_delta() {
    for (const CoveringTable::IndexOp& op : delta) {
      if (op.kind == CoveringTable::IndexOp::kAdd)
        slab.insert(op.rect, op.entry);
      else
        slab.erase(op.entry);
    }
  }

  void subscribe(SubscriberId s, const Rect& r) {
    delta.clear();
    table.subscribe(s, r, delta);
    apply_delta();
  }

  void update(SubscriberId s, const Rect& r) {
    delta.clear();
    table.update(s, r, delta);
    apply_delta();
  }
};

struct SweepRow {
  std::size_t subs = 0;
  std::size_t entries = 0;   // distinct resident rectangles (K)
  std::size_t indexed = 0;   // slab-resident maximal rectangles
  double build_seconds = 0.0;
  double update_ns = 0.0;    // mean per update through table + slab
};

SweepRow RunPopulation(const std::vector<Rect>& pool, std::size_t subs,
                       std::size_t updates, std::uint64_t seed) {
  ChurnSystem sys;
  StopwatchClock build_watch;
  for (std::size_t s = 0; s < subs; ++s)
    sys.subscribe(static_cast<SubscriberId>(s), pool[s % pool.size()]);

  SweepRow row;
  row.subs = subs;
  row.build_seconds = build_watch.elapsed_seconds();

  std::mt19937_64 rng(seed);
  StopwatchClock watch;
  for (std::size_t u = 0; u < updates; ++u) {
    const SubscriberId s = static_cast<SubscriberId>(rng() % subs);
    sys.update(s, pool[rng() % pool.size()]);
  }
  row.update_ns = watch.elapsed_seconds() * 1e9 / static_cast<double>(updates);
  row.entries = sys.table.entry_count();
  row.indexed = sys.table.indexed_count();
  return row;
}

// Per-op cost of the from-scratch alternative: every update rebuilds the
// slab index from the covering table's indexed image.
double RebuildBaselineNs(const std::vector<Rect>& pool, std::size_t subs,
                         std::size_t ops, std::uint64_t seed) {
  ChurnSystem sys;
  for (std::size_t s = 0; s < subs; ++s)
    sys.subscribe(static_cast<SubscriberId>(s), pool[s % pool.size()]);
  std::mt19937_64 rng(seed);
  StopwatchClock watch;
  for (std::size_t u = 0; u < ops; ++u) {
    const SubscriberId s = static_cast<SubscriberId>(rng() % subs);
    sys.delta.clear();
    sys.table.update(s, pool[rng() % pool.size()], sys.delta);
    sys.slab = SlabIndex(sys.table.indexed_entries(),
                         sys.table.entry_capacity());
  }
  return watch.elapsed_seconds() * 1e9 / static_cast<double>(ops);
}

std::vector<std::size_t> ParseList(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoull(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  flags.require_known({"subs", "subs_list", "distinct", "dims", "updates",
                       "rebuild_ops", "seed", "require_incremental_speedup"});
  const auto subs = static_cast<std::size_t>(flags.get_int("subs", 100000));
  const std::vector<std::size_t> sweep =
      ParseList(flags.get("subs_list", "10000,100000,1000000"));
  const auto distinct =
      static_cast<std::size_t>(flags.get_int("distinct", 4096));
  const int dims = static_cast<int>(flags.get_int("dims", 2));
  const auto updates =
      static_cast<std::size_t>(flags.get_int("updates", 20000));
  const auto rebuild_ops =
      static_cast<std::size_t>(flags.get_int("rebuild_ops", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double require_speedup =
      flags.get_double("require_incremental_speedup", 0.0);

  const std::vector<Rect> pool = MakePool(distinct, dims, seed);

  bench::BenchReport report("churn");
  report.set_config("distinct", static_cast<long long>(distinct));
  report.set_config("dims", static_cast<long long>(dims));
  report.set_config("updates", static_cast<long long>(updates));
  report.set_config("seed", static_cast<long long>(seed));

  std::printf("# churn scaling: %zu distinct rects, %d dims, %zu updates\n",
              distinct, dims, updates);
  std::printf("%12s %10s %10s %12s %14s\n", "subscribers", "entries",
              "indexed", "build (s)", "update (ns)");
  double first_ns = 0.0, last_ns = 0.0;
  for (const std::size_t n : sweep) {
    const SweepRow row = RunPopulation(pool, n, updates, seed + 17);
    std::printf("%12zu %10zu %10zu %12.3f %14.1f\n", row.subs, row.entries,
                row.indexed, row.build_seconds, row.update_ns);
    const std::string tag = std::to_string(row.subs);
    report.add("update_ns_subs_" + tag, row.update_ns, "ns");
    report.add("entries_subs_" + tag, static_cast<double>(row.entries));
    report.add("indexed_subs_" + tag, static_cast<double>(row.indexed));
    report.add("build_seconds_subs_" + tag, row.build_seconds, "s");
    if (first_ns == 0.0) first_ns = row.update_ns;
    last_ns = row.update_ns;
  }
  if (first_ns > 0.0) {
    // The headline number: how much a 100x population costs per update.
    report.add("update_latency_growth", last_ns / first_ns, "x");
    std::printf("# update latency growth across the sweep: %.2fx\n",
                last_ns / first_ns);
  }

  // Incremental maintenance vs full rebuild at --subs.
  const SweepRow inc = RunPopulation(pool, subs, updates, seed + 29);
  const double rebuild_ns = RebuildBaselineNs(pool, subs, rebuild_ops,
                                              seed + 29);
  const double speedup = rebuild_ns / inc.update_ns;
  std::printf("# at %zu subs: incremental %.1f ns/update, "
              "full rebuild %.1f ns/update (%.1fx)\n",
              subs, inc.update_ns, rebuild_ns, speedup);
  report.set_config("subs", static_cast<long long>(subs));
  report.add("incremental_update_ns", inc.update_ns, "ns");
  report.add("full_rebuild_update_ns", rebuild_ns, "ns");
  report.add("incremental_speedup", speedup, "x");

  if (require_speedup > 0.0) {
    // Below ~2us per rebuild the baseline is inside timer noise and the
    // ratio is meaningless: skip rather than flake.
    if (rebuild_ns < 2000.0) {
      std::fprintf(stderr,
                   "SKIP: rebuild baseline %.0f ns/op is too fast to gate "
                   "reliably (reduce --distinct?)\n",
                   rebuild_ns);
      return 77;
    }
    if (speedup < require_speedup) {
      std::fprintf(stderr,
                   "FAIL: incremental speedup %.2fx < required %.2fx\n",
                   speedup, require_speedup);
      return 1;
    }
    std::printf("# gate ok: %.1fx >= %.1fx\n", speedup, require_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Main(argc, argv); }
