// Fleet fan-out throughput vs shard count (serve-daemon tentpole).
//
// Drives the serve-replay command stream (publishes + churn) through a
// BrokerFleet at each shard count in --shards_list and reports events/s,
// alongside the single-broker FleetOracle baseline.  The fleet digest
// must be bit-identical across every shard count — the run aborts on a
// mismatch, making this a throughput sweep and a determinism check in
// one.
//
// Typical use:
//   bench_fleet --threads=4
//   bench_fleet --subs=2000 --events=4000 --shards_list=1,2,4,8
//
// Each shard count is also timed with the full observability stack on —
// trace_sample=1 (every publish builds its causal span tree) plus the
// watchdog check/audit cadence the serve daemon runs — so the report
// carries the cost of watching the fleet next to the cost of running it.
//
// Flags: --subs=N (default 1000) --events=N (default 2000)
//        --churn-every=K (default 4) --groups=K (default 16)
//        --cells=N (default 600) --seed=S --threads=N
//        --shards_list=CSV (default 1,2,4,8)
//        --require_min_ratio=X (CI gate: exit 1 if any multi-shard
//        throughput falls below X times the 1-shard fleet's; exit 77 =
//        "skip" on hosts with < 2 hardware threads, where fan-out
//        parallelism cannot pay for its overhead)
//        --require_obs_ratio=X (CI gate: exit 1 if the obs-on pass at any
//        shard count runs slower than X times the obs-off pass; same
//        exit-77 skip rule)
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "broker/chaos.h"
#include "obs/clock.h"
#include "obs/watchdog.h"
#include "serve/fleet.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace pubsub {
namespace {

std::vector<std::size_t> ParseShardList(const std::string& csv) {
  std::vector<std::size_t> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ','))
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoul(tok)));
  return out;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int threads = ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto events = static_cast<std::size_t>(flags.get_int("events", 2000));
  const auto churn_every =
      static_cast<std::size_t>(flags.get_int("churn-every", 4));
  const std::vector<std::size_t> shard_counts =
      ParseShardList(flags.get("shards_list", "1,2,4,8"));
  const double require_ratio = flags.get_double("require_min_ratio", 0.0);
  const double require_obs = flags.get_double("require_obs_ratio", 0.0);

  if ((require_ratio > 0.0 || require_obs > 0.0) &&
      std::thread::hardware_concurrency() < 2) {
    // On a single hardware thread the fan-out cannot recover its own
    // overhead; 77 is CTest's SKIP_RETURN_CODE.
    std::printf("fleet perf gate: SKIPPED (hardware_concurrency < 2)\n");
    return 77;
  }

  const Scenario sc = MakeStockScenario(subs, PublicationHotSpots::kOne, 91);
  const std::vector<JournalRecord> schedule =
      BuildChaosSchedule(sc.net, sc.workload, events, churn_every, seed);

  BrokerOptions bopts;
  bopts.group.num_groups = static_cast<std::size_t>(flags.get_int("groups", 16));
  bopts.group.max_cells = static_cast<std::size_t>(flags.get_int("cells", 600));

  // Single-broker baseline: what one sequenced broker does with the same
  // stream (and the digest every fleet run must reproduce).
  double oracle_events_per_s = 0.0;
  std::uint64_t want_digest = 0;
  {
    FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, bopts);
    StopwatchClock watch;
    for (const JournalRecord& rec : schedule) oracle.apply(rec);
    const double s = watch.elapsed_seconds();
    oracle_events_per_s = s > 0.0 ? static_cast<double>(events) / s : 0.0;
    want_digest = oracle.state_digest();
  }

  bench::BenchReport report("fleet");
  report.set_config("subs", subs);
  report.set_config("events", static_cast<long long>(events));
  report.set_config("churn_every", static_cast<long long>(churn_every));
  report.set_config("threads", threads);
  report.add("oracle_events_per_s", oracle_events_per_s, "events/s");

  TextTable table({"shards", "seconds", "events/s", "vs 1 shard", "obs events/s",
                   "obs cost"});
  double one_shard_eps = 0.0;
  double worst_ratio = 1.0;
  double worst_obs = 0.0;
  bool digests_ok = true;
  for (const std::size_t shards : shard_counts) {
    FleetOptions fopts;
    fopts.num_shards = shards;
    fopts.broker = bopts;
    const auto check_digest = [&](const BrokerFleet& fleet, const char* pass) {
      if (fleet.state_digest() == want_digest) return;
      digests_ok = false;
      std::fprintf(stderr,
                   "DIGEST MISMATCH at %zu shards (%s): %016llx != oracle "
                   "%016llx (bug!)\n",
                   shards, pass, (unsigned long long)fleet.state_digest(),
                   (unsigned long long)want_digest);
    };

    double plain_s = 0.0;
    {
      BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, fopts);
      StopwatchClock watch;
      for (const JournalRecord& rec : schedule) fleet.apply(rec);
      plain_s = watch.elapsed_seconds();
      check_digest(fleet, "obs off");
    }

    // Obs-on pass: every publish traced into its causal span tree, plus
    // the serve daemon's watchdog check/audit cadence riding along.
    double obs_s = 0.0;
    {
      FleetOptions oopts = fopts;
      oopts.broker.obs.trace_sample = 1;
      BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, oopts);
      FleetWatchdog watchdog(WatchdogOptions{}, &fleet.metrics());
      StopwatchClock watch;
      std::size_t applied = 0;
      for (const JournalRecord& rec : schedule) {
        fleet.apply(rec);
        if (++applied % 64 == 0) {
          watchdog.check(watch.elapsed_seconds() * 1e3,
                         fleet.shard_publish_histograms(), 0);
          watchdog.audit(watch.elapsed_seconds() * 1e3,
                         CollectShardAudit(fleet));
        }
      }
      obs_s = watch.elapsed_seconds();
      check_digest(fleet, "obs on");
    }

    const double eps = plain_s > 0.0 ? static_cast<double>(events) / plain_s : 0.0;
    const double obs_eps = obs_s > 0.0 ? static_cast<double>(events) / obs_s : 0.0;
    const double obs_cost = plain_s > 0.0 ? obs_s / plain_s : 1.0;
    if (obs_cost > worst_obs) worst_obs = obs_cost;
    if (one_shard_eps == 0.0) one_shard_eps = eps;
    const double ratio = one_shard_eps > 0.0 ? eps / one_shard_eps : 1.0;
    if (shards > 1 && ratio < worst_ratio) worst_ratio = ratio;
    table.row()
        .cell(static_cast<double>(shards), 0)
        .cell(plain_s, 4)
        .cell(eps, 0)
        .cell(ratio, 2)
        .cell(obs_eps, 0)
        .cell(obs_cost, 3);
    report.add("shards_" + std::to_string(shards) + "_events_per_s", eps,
               "events/s");
    report.add("shards_" + std::to_string(shards) + "_events_per_s_obs",
               obs_eps, "events/s");
    report.add("shards_" + std::to_string(shards) + "_obs_overhead_ratio",
               obs_cost, "x");
  }
  report.add("obs_overhead_ratio_worst", worst_obs, "x");

  std::printf("fleet fan-out throughput (subs=%d, events=%zu, churn_every=%zu, "
              "threads=%d; oracle %.0f events/s):\n\n%s",
              subs, events, churn_every, threads, oracle_events_per_s,
              table.to_string().c_str());
  std::printf("\ndigest check vs single-broker oracle: %s\n",
              digests_ok ? "bit-identical at every shard count"
                         : "MISMATCH (bug!)");
  if (!digests_ok) return 1;

  if (require_ratio > 0.0) {
    std::printf("fleet perf gate: worst multi-shard ratio %.2fx (require >= "
                "%.2fx) -> %s\n",
                worst_ratio, require_ratio,
                worst_ratio >= require_ratio ? "PASS" : "FAIL");
    if (worst_ratio < require_ratio) return 1;
  }
  if (require_obs > 0.0) {
    std::printf("fleet obs gate: worst obs-on/obs-off cost %.3fx (require <= "
                "%.3fx) -> %s\n",
                worst_obs, require_obs,
                worst_obs <= require_obs ? "PASS" : "FAIL");
    if (worst_obs > require_obs) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pubsub

int main(int argc, char** argv) { return pubsub::Run(argc, argv); }
