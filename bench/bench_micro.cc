// Micro-benchmarks (google-benchmark) for the hot kernels: membership
// bit-vector operations, the expected-waste distance, R-tree stabbing,
// Dijkstra, pruned-SPT multicast cost, and grid construction.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/cluster_types.h"
#include "core/grid.h"
#include "index/kd_interval_tree.h"
#include "index/rtree.h"
#include "index/spatial_index.h"
#include "net/multicast.h"
#include "net/shortest_path.h"
#include "net/transit_stub.h"
#include "sim/scenario.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace pubsub {
namespace {

BitVector RandomBits(std::size_t n, Rng& rng, double density = 0.1) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i)
    if (rng.bernoulli(density)) v.set(i);
  return v;
}

void BM_BitVectorCountAndNot(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitVector a = RandomBits(n, rng);
  const BitVector b = RandomBits(n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.count_and_not(b));
}
BENCHMARK(BM_BitVectorCountAndNot)->Arg(1000)->Arg(10000);

void BM_ExpectedWasteKernel(benchmark::State& state) {
  Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitVector a = RandomBits(n, rng);
  const BitVector b = RandomBits(n, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(ExpectedWaste(a, 0.3, b, 0.7));
}
BENCHMARK(BM_ExpectedWasteKernel)->Arg(1000)->Arg(10000);

void BM_GroupStateAddRemove(benchmark::State& state) {
  Rng rng(3);
  const std::size_t n = 1000;
  const BitVector bits = RandomBits(n, rng);
  const ClusterCell cell{&bits, 0.5};
  GroupState g(n);
  for (auto _ : state) {
    g.add(cell);
    g.remove(cell);
  }
}
BENCHMARK(BM_GroupStateAddRemove);

void BM_RTreeStab(benchmark::State& state) {
  Rng rng(4);
  const Scenario s = MakeStockScenario(static_cast<int>(state.range(0)),
                                       PublicationHotSpots::kOne, 5);
  std::vector<std::pair<Rect, int>> items;
  const Rect domain = s.workload.space.domain_rect();
  for (std::size_t i = 0; i < s.workload.subscribers.size(); ++i)
    items.emplace_back(s.workload.subscribers[i].interest.intersection(domain),
                       static_cast<int>(i));
  const RTree tree = RTree::BulkLoad(std::move(items));
  std::vector<Publication> pubs;
  for (int i = 0; i < 256; ++i) pubs.push_back(s.pub->sample(rng));
  std::vector<int> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    tree.stab(pubs[i++ % pubs.size()].point, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RTreeStab)->Arg(1000)->Arg(5000);

void BM_KdTreeStab(benchmark::State& state) {
  Rng rng(5);
  const Scenario s = MakeStockScenario(static_cast<int>(state.range(0)),
                                       PublicationHotSpots::kOne, 5);
  KdIntervalTree tree;
  const Rect domain = s.workload.space.domain_rect();
  for (std::size_t i = 0; i < s.workload.subscribers.size(); ++i)
    tree.insert(s.workload.subscribers[i].interest.intersection(domain),
                static_cast<int>(i));
  std::vector<Publication> pubs;
  for (int i = 0; i < 256; ++i) pubs.push_back(s.pub->sample(rng));
  std::vector<int> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    tree.stab(pubs[i++ % pubs.size()].point, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_KdTreeStab)->Arg(1000)->Arg(5000);

void BM_LinearStab(benchmark::State& state) {
  Rng rng(9);
  const Scenario s = MakeStockScenario(static_cast<int>(state.range(0)),
                                       PublicationHotSpots::kOne, 5);
  LinearIndex index;
  const Rect domain = s.workload.space.domain_rect();
  for (std::size_t i = 0; i < s.workload.subscribers.size(); ++i)
    index.insert(s.workload.subscribers[i].interest.intersection(domain),
                 static_cast<int>(i));
  std::vector<Publication> pubs;
  for (int i = 0; i < 256; ++i) pubs.push_back(s.pub->sample(rng));
  std::vector<int> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    index.stab(pubs[i++ % pubs.size()].point, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_LinearStab)->Arg(1000);

void BM_Dijkstra600(benchmark::State& state) {
  Rng rng(6);
  const TransitStubNetwork net = GenerateTransitStub(PaperNetSection5(), rng);
  for (auto _ : state) benchmark::DoNotOptimize(Dijkstra(net.graph, 0).dist[10]);
}
BENCHMARK(BM_Dijkstra600);

void BM_PrunedSptCost(benchmark::State& state) {
  Rng rng(7);
  const TransitStubNetwork net = GenerateTransitStub(PaperNetSection5(), rng);
  const ShortestPathTree spt = Dijkstra(net.graph, 0);
  PrunedSptCost pruner(net.graph);
  std::vector<NodeId> members;
  for (NodeId v = 1; v < net.graph.num_nodes(); v += 11) members.push_back(v);
  for (auto _ : state) benchmark::DoNotOptimize(pruner.cost(spt, members));
}
BENCHMARK(BM_PrunedSptCost);

void BM_GridConstruction(benchmark::State& state) {
  const Scenario s = MakeStockScenario(static_cast<int>(state.range(0)),
                                       PublicationHotSpots::kOne, 8);
  for (auto _ : state) {
    const Grid grid(s.workload, *s.pub);
    benchmark::DoNotOptimize(grid.hyper_cells().size());
  }
}
BENCHMARK(BM_GridConstruction)->Arg(500)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pubsub

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// $BENCH_OUT_DIR/BENCH_micro.json (JSON format) so every bench binary drops a
// machine-readable report; explicit --benchmark_out flags still win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    const char* dir = std::getenv("BENCH_OUT_DIR");
    std::string path = dir != nullptr && *dir != '\0'
                           ? std::string(dir) + "/BENCH_micro.json"
                           : std::string("BENCH_micro.json");
    out_flag = "--benchmark_out=" + path;
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
