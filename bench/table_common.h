// Shared driver for the Table 1 / Table 2 reproductions (§3 baseline cost
// comparison).  The two tables differ only in the default regionalism
// degree (0.4 vs 0).
#pragma once

namespace pubsub::bench {

// Parses --events/--seed/--regionalism flags and prints the baseline cost
// table for the §3 row grid; also writes BENCH_<bench_name>.json (see
// bench_report.h).  Returns a process exit code.
int RunBaselineTable(int argc, char** argv, double default_regionalism,
                     const char* bench_name);

}  // namespace pubsub::bench
