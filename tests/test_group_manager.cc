#include "core/group_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "sim/experiment.h"
#include "sim/scenario.h"

namespace pubsub {
namespace {

struct Fixture {
  Fixture() : scenario(MakeStockScenario(300, PublicationHotSpots::kOne, 51)) {}

  GroupManagerOptions SmallOptions() const {
    GroupManagerOptions o;
    o.num_groups = 20;
    o.max_cells = 1000;
    return o;
  }

  Scenario scenario;
};

TEST(GroupManager, InitialBuildProducesServingMatcher) {
  Fixture f;
  GroupManager mgr(f.scenario.workload, *f.scenario.pub, f.SmallOptions());
  EXPECT_EQ(mgr.workload().num_subscribers(), 300u);
  EXPECT_EQ(mgr.matcher().num_groups(), 20);
  EXPECT_EQ(mgr.pending_churn(), 0u);

  // The matcher must cover every interested subscriber of a few events.
  DeliverySimulator sim(f.scenario.net.graph, mgr.workload());
  Rng rng(52);
  for (const EventSample& e : SampleEvents(sim, *f.scenario.pub, 40, rng)) {
    const MatchDecision d = mgr.matcher().match(e.pub.point, e.interested);
    for (const SubscriberId s : e.interested) {
      const bool in_group =
          d.group_id >= 0 && std::find(d.group_members.begin(),
                                       d.group_members.end(),
                                       s) != d.group_members.end();
      const bool in_unicast =
          std::find(d.unicast_targets.begin(), d.unicast_targets.end(), s) !=
          d.unicast_targets.end();
      EXPECT_TRUE(in_group || in_unicast);
    }
  }
}

TEST(GroupManager, ChurnCountingAndWarmRefresh) {
  Fixture f;
  GroupManager mgr(f.scenario.workload, *f.scenario.pub, f.SmallOptions());

  const Rect interest = f.scenario.workload.subscribers[0].interest;
  const SubscriberId added = mgr.add_subscriber(5, interest);
  EXPECT_EQ(added, 300);
  mgr.update_subscriber(3, interest);
  mgr.remove_subscriber(7);
  EXPECT_EQ(mgr.pending_churn(), 3u);

  const GroupManager::RefreshStats stats = mgr.refresh();
  EXPECT_EQ(stats.churned, 3u);
  EXPECT_FALSE(stats.full_rebuild);  // 3/301 churn: warm path
  EXPECT_LE(stats.iterations, 5u);   // bounded re-balancing passes
  EXPECT_EQ(mgr.pending_churn(), 0u);
}

TEST(GroupManager, RemovedSubscriberLeavesAllGroups) {
  Fixture f;
  GroupManager mgr(f.scenario.workload, *f.scenario.pub, f.SmallOptions());
  const SubscriberId victim = 0;
  mgr.remove_subscriber(victim);
  mgr.refresh();
  for (int g = 0; g < mgr.matcher().num_groups(); ++g) {
    const auto members = mgr.matcher().group_members(g);
    EXPECT_EQ(std::find(members.begin(), members.end(), victim), members.end());
  }
}

TEST(GroupManager, AddedSubscriberJoinsAGroupAfterRefresh) {
  Fixture f;
  GroupManager mgr(f.scenario.workload, *f.scenario.pub, f.SmallOptions());
  // A wide interest guarantees the new subscriber intersects popular cells.
  const SubscriberId id = mgr.add_subscriber(9, mgr.workload().space.domain_rect());
  mgr.refresh();
  bool found = false;
  for (int g = 0; g < mgr.matcher().num_groups() && !found; ++g) {
    const auto members = mgr.matcher().group_members(g);
    found = std::find(members.begin(), members.end(), id) != members.end();
  }
  EXPECT_TRUE(found);
}

TEST(GroupManager, MassChurnTriggersFullRebuild) {
  Fixture f;
  GroupManagerOptions opt = f.SmallOptions();
  opt.full_rebuild_fraction = 0.2;
  GroupManager mgr(f.scenario.workload, *f.scenario.pub, opt);
  const Rect wide = mgr.workload().space.domain_rect();
  for (SubscriberId id = 0; id < 100; ++id) mgr.update_subscriber(id, wide);
  const GroupManager::RefreshStats stats = mgr.refresh();
  EXPECT_TRUE(stats.full_rebuild);  // 100/300 > 0.2
  // The full-build counter resets: small follow-up churn is warm again.
  mgr.update_subscriber(0, wide);
  EXPECT_FALSE(mgr.refresh().full_rebuild);
}

TEST(GroupManager, QualityHoldsAcrossChurnRounds) {
  // Needs a denser deployment than the other tests: with few subscribers
  // per event, multicast has nothing to amortize and even a perfect
  // clustering hovers near 0 % improvement.
  const Scenario scenario = MakeStockScenario(800, PublicationHotSpots::kOne, 51);
  GroupManagerOptions opt;
  opt.num_groups = 60;
  opt.max_cells = 4000;
  GroupManager mgr(scenario.workload, *scenario.pub, opt);
  Rng churn_rng(53);

  for (int round = 0; round < 3; ++round) {
    // Replace 10% of subscriptions with fresh ones.
    Rng gen = churn_rng.split(static_cast<std::uint64_t>(round));
    const Workload fresh = GenerateStockSubscriptions(scenario.net, 800, {}, gen);
    for (SubscriberId id = 0; id < 800; ++id)
      if (churn_rng.bernoulli(0.1))
        mgr.update_subscriber(id, fresh.subscribers[static_cast<std::size_t>(id)].interest);
    const GroupManager::RefreshStats stats = mgr.refresh();
    EXPECT_FALSE(stats.full_rebuild);

    DeliverySimulator sim(scenario.net.graph, mgr.workload());
    Rng ev(54 + static_cast<std::uint64_t>(round));
    const auto events = SampleEvents(sim, *scenario.pub, 80, ev);
    const BaselineCosts base = EvaluateBaselines(sim, events);
    const ClusteredCosts c =
        EvaluateMatcher(sim, events, MatcherFn(mgr.matcher()));
    EXPECT_GT(ImprovementPercent(c.network, base), 20.0) << "round " << round;
  }
}

// The between-refresh window contract (header comment): a subscriber added
// after the last refresh is invisible to the matcher, so a multicast
// decision never covers it — the caller owns its delivery via the
// exact-match unicast path (interested \ group).  This is the recipe the
// broker service layer implements; an event for a not-yet-refreshed
// subscriber must not be lost.
TEST(GroupManager, BetweenRefreshWindowNeedsCallerUnicast) {
  Fixture f;
  GroupManager mgr(f.scenario.workload, *f.scenario.pub, f.SmallOptions());
  // Domain-wide interest: the new subscriber is interested in every event.
  const SubscriberId fresh =
      mgr.add_subscriber(9, mgr.workload().space.domain_rect());
  // No refresh() — the matcher still serves the pre-churn clustering.

  DeliverySimulator sim(f.scenario.net.graph, mgr.workload());
  Rng rng(55);
  std::size_t multicasts = 0;
  for (const EventSample& e : SampleEvents(sim, *f.scenario.pub, 40, rng)) {
    // The live interested set (what the broker's subscription index
    // returns) includes the fresh subscriber.
    ASSERT_NE(std::find(e.interested.begin(), e.interested.end(), fresh),
              e.interested.end());
    const MatchDecision d = mgr.matcher().match(e.pub.point, e.interested);
    if (d.group_id < 0) {
      // Unicast fallback serves the exact interested set: covered.
      EXPECT_NE(std::find(d.unicast_targets.begin(), d.unicast_targets.end(),
                          fresh),
                d.unicast_targets.end());
      continue;
    }
    ++multicasts;
    // The matcher's decision alone does NOT cover the fresh subscriber...
    EXPECT_EQ(std::find(d.group_members.begin(), d.group_members.end(), fresh),
              d.group_members.end());
    EXPECT_TRUE(d.unicast_targets.empty());
    // ...the documented caller recipe does.
    std::vector<SubscriberId> extras;
    std::set_difference(e.interested.begin(), e.interested.end(),
                        d.group_members.begin(), d.group_members.end(),
                        std::back_inserter(extras));
    EXPECT_NE(std::find(extras.begin(), extras.end(), fresh), extras.end());
  }
  EXPECT_GT(multicasts, 0u);  // the contract was actually exercised

  // After refresh() the window closes and the matcher itself covers the
  // subscriber (see AddedSubscriberJoinsAGroupAfterRefresh).
  mgr.refresh();
  EXPECT_EQ(mgr.pending_churn(), 0u);
}

// Budgeted refresh (ISSUE 10): a sequence of 1-pass refreshes must land on
// bit-identically the same assignment as a single refresh with a budget
// large enough to finish — the resumable k-means underneath makes where
// the budget cuts invisible.  Checked with and without the closure
// acceleration.
TEST(GroupManager, BudgetedRefreshSequenceMatchesOneBigBudgetRefresh) {
  Fixture f;
  for (const bool closure : {false, true}) {
    GroupManagerOptions budgeted = f.SmallOptions();
    budgeted.closure = closure;
    budgeted.refresh_budget.max_passes = 1;
    GroupManagerOptions big = budgeted;
    big.refresh_budget.max_passes = 100;

    GroupManager a(f.scenario.workload, *f.scenario.pub, budgeted);
    GroupManager b(f.scenario.workload, *f.scenario.pub, big);
    // The construction-time build ignores the budget (nothing to resume).
    EXPECT_FALSE(a.refresh_incomplete());
    EXPECT_EQ(a.assignment(), b.assignment());

    // Identical churn on both: rotate a block of interests.
    const auto& subs = f.scenario.workload.subscribers;
    for (SubscriberId id = 0; id < 60; ++id) {
      const Rect& next = subs[static_cast<std::size_t>((id + 17) % 300)].interest;
      a.update_subscriber(id, next);
      b.update_subscriber(id, next);
    }

    const GroupManager::RefreshStats sb = b.refresh();
    EXPECT_FALSE(sb.budget_exhausted);
    EXPECT_FALSE(b.refresh_incomplete());

    GroupManager::RefreshStats sa = a.refresh();
    std::size_t total_passes = sa.iterations;
    int rounds = 1;
    while (a.refresh_incomplete()) {
      ASSERT_TRUE(sa.budget_exhausted);
      EXPECT_EQ(sa.iterations, 1u);  // the per-call pass budget held
      ASSERT_LT(++rounds, 100) << "budgeted refreshes failed to converge";
      sa = a.refresh();  // no new churn: pure resume
      total_passes += sa.iterations;
    }
    EXPECT_GT(rounds, 1) << "budget never bit; test is vacuous";
    EXPECT_EQ(a.assignment(), b.assignment()) << "closure=" << closure;
    EXPECT_EQ(total_passes, sb.iterations) << "closure=" << closure;
  }
}

TEST(GroupManager, SnapshotRestoreReproducesMatcher) {
  Fixture f;
  GroupManager mgr(f.scenario.workload, *f.scenario.pub, f.SmallOptions());
  mgr.update_subscriber(3, mgr.workload().space.domain_rect());
  mgr.refresh();

  const GroupManager restored(mgr.workload(), *f.scenario.pub,
                              f.SmallOptions(), mgr.assignment(),
                              mgr.churn_since_full_build());
  EXPECT_EQ(restored.assignment(), mgr.assignment());
  EXPECT_EQ(restored.churn_since_full_build(), mgr.churn_since_full_build());
  ASSERT_EQ(restored.matcher().num_groups(), mgr.matcher().num_groups());
  for (int g = 0; g < mgr.matcher().num_groups(); ++g) {
    const auto a = mgr.matcher().group_members(g);
    const auto b = restored.matcher().group_members(g);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }

  // An assignment from a different workload/options set is rejected.
  Assignment truncated = mgr.assignment();
  truncated.pop_back();
  EXPECT_THROW(GroupManager(mgr.workload(), *f.scenario.pub, f.SmallOptions(),
                            truncated, 0),
               std::invalid_argument);
}

TEST(GroupManager, Validation) {
  Fixture f;
  GroupManager mgr(f.scenario.workload, *f.scenario.pub, f.SmallOptions());
  EXPECT_THROW(mgr.update_subscriber(-1, Rect(4)), std::out_of_range);
  EXPECT_THROW(mgr.update_subscriber(9999, Rect(4)), std::out_of_range);
  EXPECT_THROW(mgr.add_subscriber(0, Rect(2)), std::invalid_argument);
  GroupManagerOptions bad;
  bad.num_groups = 0;
  EXPECT_THROW(GroupManager(f.scenario.workload, *f.scenario.pub, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace pubsub
