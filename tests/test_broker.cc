#include "broker/broker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "broker/chaos.h"
#include "broker/replica.h"
#include "io/serialize.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/failpoint.h"
#include "workload/stock_model.h"

namespace pubsub {
namespace {

BrokerStats WithoutProvenance(BrokerStats s) {
  s.snapshot_bytes = 0;
  s.replayed_records = 0;
  return s;
}

// PublishOutcome's spans have no operator==; materialize for EXPECT_EQ.
template <typename T>
std::vector<T> ToVec(std::span<const T> s) {
  return {s.begin(), s.end()};
}

struct BrokerFixture {
  BrokerFixture()
      : scenario(MakeStockScenario(250, PublicationHotSpots::kOne, 61)) {
    DeliverySimulator sim(scenario.net.graph, scenario.workload);
    Rng rng(62);
    events = SampleEvents(sim, *scenario.pub, 120, rng);
  }

  BrokerOptions SmallOptions() const {
    BrokerOptions o;
    o.group.num_groups = 12;
    o.group.max_cells = 800;
    o.refresh.churn_fraction = 0.03;  // ~8 churn commands per refresh
    o.refresh.waste_ratio = 0.0;      // waste trigger off: refreshes are
    return o;                         // a pure function of churn volume
  }

  Broker MakeBroker(const BrokerOptions& opts, Clock* clock) const {
    return Broker(scenario.workload, *scenario.pub, scenario.net.graph, opts,
                  clock);
  }

  // Publish every sampled event, interleaving one churn command (cycling
  // subscribe / update / unsubscribe) every `churn_every` events.  All
  // randomness is pre-seeded, so two brokers driven by this function
  // receive identical command streams.
  void Drive(Broker& broker, ManualClock& clock,
             std::size_t churn_every = 5) const {
    Rng churn_rng(63);
    std::vector<SubscriberId> live(broker.workload().num_subscribers());
    for (std::size_t i = 0; i < live.size(); ++i)
      live[i] = static_cast<SubscriberId>(i);
    int churn_kind = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      clock.advance(7.0);
      if (churn_every > 0 && (i + 1) % churn_every == 0) {
        Rng sub_rng = churn_rng.split(i);
        const Workload one =
            GenerateStockSubscriptions(scenario.net, 1, {}, sub_rng);
        const auto pick = static_cast<std::size_t>(churn_rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        switch (churn_kind++ % 3) {
          case 0:
            live.push_back(broker.subscribe(one.subscribers[0].node,
                                            one.subscribers[0].interest));
            break;
          case 1:
            broker.update(live[pick], one.subscribers[0].interest);
            break;
          default:
            broker.unsubscribe(live[pick]);
            live[pick] = live.back();
            live.pop_back();
        }
      }
      broker.publish(events[i].pub.origin, events[i].pub.point);
    }
  }

  Scenario scenario;
  std::vector<EventSample> events;
};

bool Covers(const PublishOutcome& out, SubscriberId id) {
  if (std::find(out.unicast_targets.begin(), out.unicast_targets.end(), id) !=
      out.unicast_targets.end())
    return true;
  return false;
}

TEST(Broker, SequencingAndCounters) {
  BrokerFixture f;
  ManualClock clock;
  Broker broker = f.MakeBroker(f.SmallOptions(), &clock);
  EXPECT_EQ(broker.seq(), 0u);
  EXPECT_EQ(broker.snapshot().seq, 0u);  // initial build is a checkpoint

  clock.advance(2.0);
  const SubscriberId id =
      broker.subscribe(4, broker.workload().space.domain_rect());
  EXPECT_EQ(id, 250);
  EXPECT_EQ(broker.seq(), 1u);
  EXPECT_EQ(broker.last_command_time_ms(), 2.0);

  clock.advance(2.0);
  broker.update(id, broker.workload().space.domain_rect());
  clock.advance(2.0);
  const PublishOutcome out =
      broker.publish(f.events[0].pub.origin, f.events[0].pub.point);
  EXPECT_EQ(out.seq, 3u);
  EXPECT_EQ(broker.seq(), 3u);

  const BrokerStats& s = broker.stats();
  EXPECT_EQ(s.commands_applied, 3u);
  EXPECT_EQ(s.subscribes, 1u);
  EXPECT_EQ(s.updates, 1u);
  EXPECT_EQ(s.publishes, 1u);
  EXPECT_EQ(s.multicast_events + s.unicast_events, s.publishes);
  EXPECT_GT(s.journal_bytes, 0u);
  EXPECT_EQ(s.snapshot_bytes, 0u);  // fresh broker: no recovery provenance
  EXPECT_EQ(s.replayed_records, 0u);

  // The live interested set is sorted and includes the domain-wide sub.
  const auto inter = broker.interested(f.events[0].pub.point);
  EXPECT_TRUE(std::is_sorted(inter.begin(), inter.end()));
  EXPECT_NE(std::find(inter.begin(), inter.end(), id), inter.end());
  EXPECT_EQ(inter.size(), out.interested);

  clock.advance(2.0);
  broker.unsubscribe(id);
  EXPECT_EQ(broker.stats().unsubscribes, 1u);
  const auto after = broker.interested(f.events[0].pub.point);
  EXPECT_EQ(std::find(after.begin(), after.end(), id), after.end());
}

// The between-refresh window, end to end: a subscriber added after the
// last refresh is invisible to the matcher, but the broker's live index +
// caller-side unicast completion must still deliver every event to it.
TEST(Broker, PreRefreshSubscriberNeverLosesEvents) {
  BrokerFixture f;
  BrokerOptions opts = f.SmallOptions();
  opts.refresh.churn_fraction = 0.0;  // both triggers off: no refresh ever
  ManualClock clock;
  Broker broker = f.MakeBroker(opts, &clock);

  const SubscriberId fresh =
      broker.subscribe(9, broker.workload().space.domain_rect());
  std::size_t multicasts = 0;
  for (const EventSample& e : f.events) {
    clock.advance(5.0);
    const PublishOutcome out = broker.publish(e.pub.origin, e.pub.point);
    EXPECT_FALSE(out.refreshed);
    if (out.group_id >= 0) {
      ++multicasts;
      // The pre-refresh matcher cannot know `fresh`, so coverage must come
      // from the unicast completion of interested \ group.
      EXPECT_TRUE(Covers(out, fresh)) << "event at seq " << out.seq;
    } else {
      EXPECT_TRUE(Covers(out, fresh));
    }
    // One latency per delivered copy: group members + unicast targets.
    EXPECT_EQ(out.timing.latencies_ms.size(),
              out.group_size + out.unicast_targets.size());
  }
  EXPECT_GT(multicasts, 0u);
  EXPECT_EQ(broker.stats().refreshes, 0u);
  EXPECT_EQ(broker.snapshot().seq, 0u);  // no new checkpoint without refresh
}

TEST(Broker, ChurnTriggersRefresh) {
  BrokerFixture f;
  BrokerOptions opts = f.SmallOptions();
  opts.refresh.churn_fraction = 0.02;  // 250 * 0.02 = 5 churned subs
  ManualClock clock;
  Broker broker = f.MakeBroker(opts, &clock);

  const Rect wide = broker.workload().space.domain_rect();
  for (SubscriberId id = 0; id < 5; ++id) {
    EXPECT_EQ(broker.stats().refreshes, 0u);
    clock.advance(1.0);
    broker.update(id, wide);
  }
  EXPECT_EQ(broker.stats().refreshes, 1u);
  EXPECT_EQ(broker.groups().pending_churn(), 0u);
  // The refresh captured a checkpoint at the current seq.
  EXPECT_EQ(broker.snapshot().seq, broker.seq());
  EXPECT_EQ(broker.snapshot().stats, broker.stats());
}

TEST(Broker, WasteTriggersRefresh) {
  BrokerFixture f;
  BrokerOptions opts = f.SmallOptions();
  opts.refresh.churn_fraction = 0.0;   // churn trigger off
  opts.refresh.waste_ratio = 0.05;     // almost any waste qualifies
  opts.refresh.min_messages = 1;
  ManualClock clock;
  Broker broker = f.MakeBroker(opts, &clock);

  // Publish with zero pending churn: waste alone must NOT refresh (there
  // is nothing a re-clustering of the same table would change).
  for (std::size_t i = 0; i < 10; ++i) {
    clock.advance(1.0);
    broker.publish(f.events[i].pub.origin, f.events[i].pub.point);
  }
  EXPECT_EQ(broker.stats().refreshes, 0u);

  // One churned subscription arms the trigger; the next wasteful publish
  // fires it.
  clock.advance(1.0);
  broker.update(0, broker.workload().space.domain_rect());
  std::size_t published = 10;
  while (broker.stats().refreshes == 0 && published < f.events.size()) {
    clock.advance(1.0);
    broker.publish(f.events[published].pub.origin,
                   f.events[published].pub.point);
    ++published;
  }
  EXPECT_EQ(broker.stats().refreshes, 1u);
}

// Budgeted refresh (ISSUE 10): with a 1-pass refresh budget, the churn
// trigger starts a refresh that exhausts its budget mid-iteration; the
// following publishes resume it (trigger cause "resume") with no further
// churn, and the checkpoint is captured only at the complete boundary.
TEST(Broker, BudgetedRefreshResumesAcrossPublishes) {
  BrokerFixture f;
  BrokerOptions opts = f.SmallOptions();
  opts.group.refresh_budget.max_passes = 1;
  ManualClock clock;
  Broker broker = f.MakeBroker(opts, &clock);

  // Drastic churn (domain-wide interests) so the warm re-balancing surely
  // needs more than the single budgeted pass.
  const Rect wide = broker.workload().space.domain_rect();
  for (SubscriberId id = 0; id < 8; ++id) {
    clock.advance(1.0);
    broker.update(id, wide);
  }
  ASSERT_EQ(broker.stats().refreshes, 1u);  // churn trigger fired
  ASSERT_TRUE(broker.groups().refresh_incomplete());
  // Incomplete refresh boundaries never checkpoint: the construction-time
  // checkpoint (seq 0) is still the latest.
  EXPECT_EQ(broker.snapshot().seq, 0u);

  std::size_t resumes = 0;
  while (broker.groups().refresh_incomplete()) {
    ASSERT_LT(resumes, f.events.size()) << "refresh never completed";
    clock.advance(1.0);
    const PublishOutcome out =
        broker.publish(f.events[resumes].pub.origin, f.events[resumes].pub.point);
    EXPECT_TRUE(out.refreshed);  // the publish carried a resume slice
    ++resumes;
  }
  EXPECT_GE(resumes, 1u);
  // The completing refresh captured the checkpoint at its own seq.
  EXPECT_EQ(broker.snapshot().seq, broker.seq());
  EXPECT_EQ(
      broker.metrics()
          .counter(LabeledName("broker_refresh_trigger_total", "cause", "resume"),
                   "")
          ->value(),
      resumes);

  // Quiesced: the next publish triggers nothing.
  clock.advance(1.0);
  const PublishOutcome idle =
      broker.publish(f.events[0].pub.origin, f.events[0].pub.point);
  EXPECT_FALSE(idle.refreshed);
}

// Kill a budgeted broker *mid-incomplete-refresh* and recover from the
// (older, complete-boundary) checkpoint plus the journal tail: replay
// re-executes the budgeted refresh slices deterministically, so the
// recovered state is bit-identical even though the snapshot knows nothing
// about the in-flight iteration.
TEST(Broker, BudgetedRefreshKillAndRecoverBitIdentical) {
  BrokerFixture f;
  BrokerOptions opts = f.SmallOptions();
  opts.group.refresh_budget.max_passes = 1;
  ManualClock clock;
  Broker live = f.MakeBroker(opts, &clock);
  std::ostringstream journal_text;
  live.set_journal(&journal_text);

  struct Cut {
    std::uint64_t seq = 0;
    std::uint64_t digest = 0;
    BrokerSnapshot snap;
    std::string journal;
  };
  std::vector<Cut> cuts;

  const Rect wide = live.workload().space.domain_rect();
  for (std::size_t i = 0; i < f.events.size(); ++i) {
    clock.advance(7.0);
    if ((i + 1) % 4 == 0) {
      const auto id = static_cast<SubscriberId>((i * 13) % 250);
      live.update(id, (i % 8 == 3) ? wide
                                   : f.scenario.workload
                                         .subscribers[(i * 29 + 1) % 250]
                                         .interest);
      // First cut: the earliest point where a refresh is parked incomplete
      // (checkpoint strictly older than the live clustering state).  Taken
      // right after the churn command, before any publish gets a chance to
      // resume-and-complete the iteration.
      if (cuts.empty() && live.groups().refresh_incomplete())
        cuts.push_back({live.seq(), live.state_digest(), live.snapshot(),
                        journal_text.str()});
    }
    live.publish(f.events[i].pub.origin, f.events[i].pub.point);
  }
  cuts.push_back(
      {live.seq(), live.state_digest(), live.snapshot(), journal_text.str()});
  ASSERT_EQ(cuts.size(), 2u) << "no incomplete-refresh window was observed";
  ASSERT_LT(cuts[0].snap.seq, cuts[0].seq);

  ManualClock recovered_clock;
  for (const Cut& cut : cuts) {
    std::ostringstream snap_text;
    WriteBrokerSnapshot(snap_text, cut.snap);
    std::istringstream snap_in(snap_text.str());
    const BrokerSnapshot snap = ReadBrokerSnapshot(snap_in);

    std::istringstream journal_in(cut.journal);
    const JournalFile jf = ReadJournal(journal_in);
    auto recovered =
        Broker::Recover(snap, jf.records, *f.scenario.pub, f.scenario.net.graph,
                        opts, &recovered_clock);
    EXPECT_EQ(recovered->seq(), cut.seq);
    EXPECT_EQ(recovered->state_digest(), cut.digest) << "cut at " << cut.seq;
    if (&cut == &cuts[0]) {
      // Replay reconstructed the parked mid-iteration state itself, not
      // just the checkpointed one.
      EXPECT_TRUE(recovered->groups().refresh_incomplete());
    } else {
      EXPECT_EQ(recovered->groups().refresh_incomplete(),
                live.groups().refresh_incomplete());
      EXPECT_EQ(recovered->groups().assignment(), live.groups().assignment());
    }
  }
}

TEST(Broker, IdenticalCommandStreamsProduceIdenticalState) {
  BrokerFixture f;
  ManualClock c1, c2;
  Broker a = f.MakeBroker(f.SmallOptions(), &c1);
  Broker b = f.MakeBroker(f.SmallOptions(), &c2);
  f.Drive(a, c1);
  f.Drive(b, c2);
  EXPECT_EQ(a.seq(), b.seq());
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(a.stats(), b.stats());
}

// The tentpole acceptance test: stop a broker at arbitrary points, recover
// from its latest snapshot plus the journal tail (both round-tripped
// through their text formats), and require bit-identical state — digests,
// counters, and the outcome of a probe publish.
TEST(Broker, KillAndRecoverIsBitIdentical) {
  BrokerFixture f;
  const BrokerOptions opts = f.SmallOptions();
  ManualClock clock;
  Broker live = f.MakeBroker(opts, &clock);
  std::ostringstream journal_text;
  live.set_journal(&journal_text);

  struct Cut {
    std::uint64_t seq = 0;
    std::uint64_t digest = 0;
    BrokerSnapshot snap;
    std::string journal;
  };
  std::vector<Cut> cuts;
  const std::vector<std::size_t> cut_after = {10, 47, 95};

  // Inline drive so cuts can be captured mid-stream.
  {
    Rng churn_rng(63);
    std::vector<SubscriberId> alive(live.workload().num_subscribers());
    for (std::size_t i = 0; i < alive.size(); ++i)
      alive[i] = static_cast<SubscriberId>(i);
    int churn_kind = 0;
    for (std::size_t i = 0; i < f.events.size(); ++i) {
      clock.advance(7.0);
      if ((i + 1) % 5 == 0) {
        Rng sub_rng = churn_rng.split(i);
        const Workload one =
            GenerateStockSubscriptions(f.scenario.net, 1, {}, sub_rng);
        const auto pick = static_cast<std::size_t>(churn_rng.uniform_int(
            0, static_cast<std::int64_t>(alive.size()) - 1));
        switch (churn_kind++ % 3) {
          case 0:
            alive.push_back(live.subscribe(one.subscribers[0].node,
                                           one.subscribers[0].interest));
            break;
          case 1:
            live.update(alive[pick], one.subscribers[0].interest);
            break;
          default:
            live.unsubscribe(alive[pick]);
            alive[pick] = alive.back();
            alive.pop_back();
        }
      }
      live.publish(f.events[i].pub.origin, f.events[i].pub.point);
      if (std::find(cut_after.begin(), cut_after.end(), i) != cut_after.end())
        cuts.push_back(
            {live.seq(), live.state_digest(), live.snapshot(), journal_text.str()});
    }
  }
  ASSERT_EQ(cuts.size(), 3u);
  EXPECT_GT(live.stats().refreshes, 1u);  // later cuts recover from a
                                          // non-trivial checkpoint
  const std::string full_journal = journal_text.str();
  const std::uint64_t final_digest = live.state_digest();
  const BrokerStats final_stats = live.stats();

  std::unique_ptr<Broker> last_recovered;
  ManualClock recovered_clock;
  for (const Cut& cut : cuts) {
    // Round-trip the snapshot through its serialized form, as a real
    // restart would.
    std::ostringstream snap_text;
    WriteBrokerSnapshot(snap_text, cut.snap);
    std::istringstream snap_in(snap_text.str());
    const BrokerSnapshot snap = ReadBrokerSnapshot(snap_in);
    EXPECT_LE(snap.seq, cut.seq);

    std::istringstream journal_in(cut.journal);
    const JournalFile jf = ReadJournal(journal_in);
    ASSERT_FALSE(jf.records.empty());
    EXPECT_EQ(jf.records.back().seq, cut.seq);

    auto recovered =
        Broker::Recover(snap, jf.records, *f.scenario.pub, f.scenario.net.graph,
                        opts, &recovered_clock);
    EXPECT_EQ(recovered->seq(), cut.seq);
    EXPECT_EQ(recovered->state_digest(), cut.digest) << "cut at " << cut.seq;
    EXPECT_EQ(recovered->stats().replayed_records, cut.seq - snap.seq);
    EXPECT_GT(recovered->stats().snapshot_bytes, 0u);

    // Feeding the rest of the journal brings it to the final state.
    std::istringstream full_in(full_journal);
    for (const JournalRecord& rec : ReadJournal(full_in).records)
      if (rec.seq > cut.seq) recovered->apply(rec);
    EXPECT_EQ(recovered->seq(), live.seq());
    EXPECT_EQ(recovered->state_digest(), final_digest);
    EXPECT_EQ(WithoutProvenance(recovered->stats()),
              WithoutProvenance(final_stats));
    last_recovered = std::move(recovered);
  }

  // Equal digests promise equal futures: probe both brokers with the same
  // publish at the same time and require identical decisions and timing.
  clock.advance(11.0);
  recovered_clock.advance_to(clock.now_ms());
  const PublishOutcome a =
      live.publish(f.events[0].pub.origin, f.events[0].pub.point);
  const PublishOutcome b =
      last_recovered->publish(f.events[0].pub.origin, f.events[0].pub.point);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.group_id, b.group_id);
  EXPECT_EQ(a.group_size, b.group_size);
  EXPECT_EQ(ToVec(a.unicast_targets), ToVec(b.unicast_targets));
  EXPECT_EQ(a.interested, b.interested);
  EXPECT_EQ(a.wasted, b.wasted);
  EXPECT_EQ(a.timing.queue_wait_ms, b.timing.queue_wait_ms);
  EXPECT_EQ(a.timing.service_ms, b.timing.service_ms);
  EXPECT_EQ(ToVec(a.timing.latencies_ms), ToVec(b.timing.latencies_ms));
  EXPECT_EQ(live.state_digest(), last_recovered->state_digest());
}

TEST(Broker, WarmStandbyPromotionIsBitIdentical) {
  BrokerFixture f;
  const BrokerOptions opts = f.SmallOptions();
  ManualClock primary_clock;
  Broker primary = f.MakeBroker(opts, &primary_clock);

  // Bootstrap the standby from the primary's seq-0 snapshot and wire it to
  // the live record stream.
  ManualClock standby_clock;
  BrokerReplica replica(primary.snapshot(), *f.scenario.pub,
                        f.scenario.net.graph, opts, &standby_clock);
  JournalRecord last_record;
  primary.set_record_listener([&](const JournalRecord& rec) {
    replica.apply(rec);
    last_record = rec;
  });

  f.Drive(primary, primary_clock);
  EXPECT_EQ(replica.seq(), primary.seq());
  EXPECT_EQ(replica.broker().state_digest(), primary.state_digest());
  EXPECT_EQ(WithoutProvenance(replica.broker().stats()),
            WithoutProvenance(primary.stats()));

  // A resent record is ignored; a gap is a hard error.
  replica.apply(last_record);
  EXPECT_EQ(replica.seq(), primary.seq());
  JournalRecord gap = last_record;
  gap.seq += 2;
  EXPECT_THROW(replica.apply(gap), std::runtime_error);

  // Failover: detach the stream, then promote.  A spent replica rejects
  // further records instead of crashing.
  primary.set_record_listener({});
  std::unique_ptr<Broker> promoted = std::move(replica).promote();
  EXPECT_THROW(replica.apply(last_record), std::logic_error);
  primary_clock.advance(4.0);
  standby_clock.advance_to(primary_clock.now_ms());
  const PublishOutcome a =
      primary.publish(f.events[1].pub.origin, f.events[1].pub.point);
  const PublishOutcome b =
      promoted->publish(f.events[1].pub.origin, f.events[1].pub.point);
  EXPECT_EQ(a.group_id, b.group_id);
  EXPECT_EQ(ToVec(a.unicast_targets), ToVec(b.unicast_targets));
  EXPECT_EQ(ToVec(a.timing.latencies_ms), ToVec(b.timing.latencies_ms));
  EXPECT_EQ(primary.state_digest(), promoted->state_digest());
}

TEST(Broker, Validation) {
  BrokerFixture f;
  ManualClock clock;
  Broker broker = f.MakeBroker(f.SmallOptions(), &clock);

  // Out-of-order apply is rejected.
  JournalRecord rec;
  rec.seq = 5;  // broker is at seq 0
  rec.cmd.type = BrokerCommandType::kPublish;
  rec.cmd.node = f.events[0].pub.origin;
  rec.cmd.point = f.events[0].pub.point;
  EXPECT_THROW(broker.apply(rec), std::runtime_error);

  // Recovery refuses a journal with a gap after the snapshot.
  rec.seq = 2;
  rec.cmd.time_ms = 1.0;
  const std::vector<JournalRecord> gappy{rec};
  EXPECT_THROW(Broker::Recover(broker.snapshot(), gappy, *f.scenario.pub,
                               f.scenario.net.graph, f.SmallOptions()),
               std::runtime_error);

  // A snapshot only restores under the options it was captured with.
  BrokerOptions other = f.SmallOptions();
  other.group.num_groups = 7;
  EXPECT_THROW(Broker::Recover(broker.snapshot(), {}, *f.scenario.pub,
                               f.scenario.net.graph, other),
               std::invalid_argument);
}

// A churn command naming an unknown subscriber id must be rejected BEFORE
// it is journaled or sequenced — on the live path and on replay alike.
// (Regression: pre-validation happened only inside apply_churn, after the
// write-ahead append, so a primary that rejected the command had already
// replicated it and every replica desynced.)
TEST(Broker, UnknownChurnTargetRejectedWithoutDesync) {
  BrokerFixture f;
  ManualClock clock_a, clock_b;
  Broker a = f.MakeBroker(f.SmallOptions(), &clock_a);
  Broker b = f.MakeBroker(f.SmallOptions(), &clock_b);  // rejection-free twin
  std::ostringstream journal;
  a.set_journal(&journal);

  const Rect rect = a.workload().space.domain_rect();
  clock_a.advance(1.0);
  clock_b.advance(1.0);
  a.subscribe(2, rect);
  b.subscribe(2, rect);

  const SubscriberId bogus =
      static_cast<SubscriberId>(a.workload().num_subscribers()) + 7;
  const std::uint64_t seq_before = a.seq();
  const std::string journal_before = journal.str();
  EXPECT_THROW(a.unsubscribe(bogus), std::out_of_range);
  EXPECT_THROW(a.update(bogus, rect), std::out_of_range);
  EXPECT_THROW(a.unsubscribe(-1), std::out_of_range);
  EXPECT_EQ(a.seq(), seq_before) << "rejected command must not consume seq";
  EXPECT_EQ(journal.str(), journal_before)
      << "rejected command must never reach the journal";

  // Replay path: the same records throw the same type, same state.
  JournalRecord rec;
  rec.seq = a.seq() + 1;
  rec.cmd.type = BrokerCommandType::kUnsubscribe;
  rec.cmd.time_ms = a.last_command_time_ms() + 1.0;
  rec.cmd.subscriber = bogus;
  EXPECT_THROW(a.apply(rec), std::out_of_range);
  rec.cmd.type = BrokerCommandType::kUpdate;
  rec.cmd.interest = rect;
  EXPECT_THROW(a.apply(rec), std::out_of_range);
  EXPECT_EQ(a.seq(), seq_before);

  // The attempts are unobservable: the twin that never saw them stays
  // bit-identical through further service.
  clock_a.advance(1.0);
  clock_b.advance(1.0);
  a.publish(f.events[0].pub.origin, f.events[0].pub.point);
  b.publish(f.events[0].pub.origin, f.events[0].pub.point);
  EXPECT_EQ(a.state_digest(), b.state_digest());

  // Recovery refuses a journal carrying such a record instead of replaying
  // it into a divergent state.
  std::vector<JournalRecord> bad(1, rec);
  bad[0].seq = a.snapshot().seq + 1;
  EXPECT_THROW(Broker::Recover(a.snapshot(), bad, *f.scenario.pub,
                               f.scenario.net.graph, f.SmallOptions()),
               std::out_of_range);
}

// Snapshot format v3 embeds the covering table verbatim; a pre-covering
// (v2) snapshot restores by rebuilding the table from the workload.  Both
// paths must land on the same state as the live broker.
TEST(Broker, SnapshotRoundTripRestoresCoveringTable) {
  BrokerFixture f;
  ManualClock clock;
  Broker broker = f.MakeBroker(f.SmallOptions(), &clock);
  const BrokerSnapshot& snap = broker.snapshot();
  ASSERT_FALSE(snap.covering.entries.empty());

  std::ostringstream os;
  WriteBrokerSnapshot(os, snap);
  std::istringstream is(os.str());
  const BrokerSnapshot back = ReadBrokerSnapshot(is);
  ASSERT_EQ(back.covering.entries.size(), snap.covering.entries.size());

  const auto restored = Broker::Recover(back, {}, *f.scenario.pub,
                                        f.scenario.net.graph, f.SmallOptions());
  EXPECT_EQ(restored->state_digest(), broker.state_digest());

  // Legacy image: drop the covering section as a v2 reader would.
  BrokerSnapshot legacy = back;
  legacy.covering = CoveringState();
  const auto rebuilt = Broker::Recover(legacy, {}, *f.scenario.pub,
                                       f.scenario.net.graph, f.SmallOptions());
  EXPECT_EQ(rebuilt->state_digest(), broker.state_digest());
}

// --- fault injection & graceful degradation -------------------------------

// Clears the process-global fail-point registry on both sides of each test.
class BrokerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Instance().clear(); }
  void TearDown() override { FailPoints::Instance().clear(); }
};

TEST_F(BrokerFaultTest, ShortJournalWritesRetryToCompletion) {
  BrokerFixture f;
  const BrokerOptions opts = f.SmallOptions();
  const auto schedule =
      BuildChaosSchedule(f.scenario.net, f.scenario.workload, 10, 5, 7);

  ManualClock clock_a, clock_b;
  Broker a = f.MakeBroker(opts, &clock_a);
  Broker b = f.MakeBroker(opts, &clock_b);
  std::ostringstream ja, jb;
  a.set_journal(&ja);
  b.set_journal(&jb);

  // Every append lands only 3 bytes per write call: the broker must loop
  // the remainder without counting failures or losing bytes.
  FailPoints::Instance().configure("journal.write=error:3");
  for (const JournalRecord& rec : schedule) a.apply(rec);
  FailPoints::Instance().clear();
  for (const JournalRecord& rec : schedule) b.apply(rec);

  EXPECT_EQ(ja.str(), jb.str());  // byte-identical journal despite faults
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(a.stats().journal_flush_failures, 0u);
  EXPECT_FALSE(a.degraded());
}

TEST_F(BrokerFaultTest, PostJournalCrashLeavesTheRecordDurable) {
  BrokerFixture f;
  const BrokerOptions opts = f.SmallOptions();
  const auto schedule =
      BuildChaosSchedule(f.scenario.net, f.scenario.workload, 6, 3, 7);

  ManualClock clock;
  Broker broker = f.MakeBroker(opts, &clock);
  std::ostringstream journal;
  broker.set_journal(&journal);
  const BrokerSnapshot base = broker.snapshot();

  broker.apply(schedule[0]);
  FailPoints::Instance().configure("broker.publish.post_journal=crash*1");
  EXPECT_THROW(broker.apply(schedule[1]), InjectedCrash);
  FailPoints::Instance().clear();
  EXPECT_EQ(broker.seq(), 1u);  // the mutation never happened in memory...

  // ...but the WAL record is durable, so recovery replays it.
  std::istringstream is(journal.str());
  const JournalFile jf = ReadJournal(is);
  ASSERT_EQ(jf.records.size(), 2u);
  const auto recovered =
      Broker::Recover(base, jf.records, *f.scenario.pub, f.scenario.net.graph,
                      opts);
  EXPECT_EQ(recovered->seq(), 2u);
}

TEST_F(BrokerFaultTest, PersistentFlushFailureBacksOffThenDegrades) {
  BrokerFixture f;
  BrokerOptions opts = f.SmallOptions();
  opts.durability.flush_retries = 6;
  opts.durability.backoff_base_ms = 1.0;
  opts.durability.backoff_cap_ms = 4.0;
  const auto schedule =
      BuildChaosSchedule(f.scenario.net, f.scenario.workload, 10, 5, 7);

  ManualClock clock;
  Broker broker = f.MakeBroker(opts, &clock);
  std::ostringstream journal;
  broker.set_journal(&journal);
  broker.apply(schedule[0]);

  const double before_ms = clock.now_ms();
  FailPoints::Instance().configure("journal.flush=error");
  EXPECT_THROW(broker.apply(schedule[1]), BrokerDegradedError);

  // Capped exponential backoff, deterministic through the manual clock:
  // 1 + 2 + 4 + 4 + 4 + 4 = 19ms across the six retries.
  EXPECT_DOUBLE_EQ(clock.now_ms() - before_ms, 19.0);
  EXPECT_TRUE(broker.degraded());
  const BrokerStats& s = broker.stats();
  EXPECT_EQ(s.journal_flush_retries, 6u);
  EXPECT_EQ(s.journal_flush_failures, 7u);  // initial attempt + 6 retries
  EXPECT_EQ(s.degraded_entries, 1u);
  EXPECT_EQ(broker.seq(), 1u);  // the faulted command did not take effect
}

TEST_F(BrokerFaultTest, DegradedModeServesReadsRejectsWritesAndResumes) {
  BrokerFixture f;
  const BrokerOptions opts = f.SmallOptions();
  const auto schedule =
      BuildChaosSchedule(f.scenario.net, f.scenario.workload, 15, 5, 7);

  ManualClock clock_a, clock_b;
  Broker a = f.MakeBroker(opts, &clock_a);
  Broker b = f.MakeBroker(opts, &clock_b);  // clean twin, no journal faults
  std::ostringstream ja, jb;
  a.set_journal(&ja);
  b.set_journal(&jb);

  const std::size_t half = schedule.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    a.apply(schedule[i]);
    b.apply(schedule[i]);
  }

  FailPoints::Instance().configure("journal.flush=error");
  EXPECT_THROW(a.apply(schedule[half]), BrokerDegradedError);
  EXPECT_TRUE(a.degraded());

  // Reads keep serving while degraded.
  const Point& probe = f.events[0].pub.point;
  EXPECT_EQ(a.interested(probe), b.interested(probe));
  EXPECT_NO_THROW(a.match(probe));
  EXPECT_NO_THROW(a.stats());

  // Mutations are rejected and counted.
  EXPECT_THROW(a.apply(schedule[half]), BrokerDegradedError);
  EXPECT_THROW(a.subscribe(3, a.workload().space.domain_rect()),
               BrokerDegradedError);
  EXPECT_EQ(a.stats().mutations_rejected, 2u);

  // While the fault persists, clear_degraded() reports failure and stays
  // degraded.
  EXPECT_FALSE(a.clear_degraded());
  EXPECT_TRUE(a.degraded());

  // Once the "disk" heals, clearing finishes the interrupted append and
  // applies the pending command — a late success, not a lost update.
  FailPoints::Instance().clear();
  EXPECT_TRUE(a.clear_degraded());
  EXPECT_FALSE(a.degraded());
  b.apply(schedule[half]);
  EXPECT_EQ(a.seq(), b.seq());

  for (std::size_t i = half + 1; i < schedule.size(); ++i) {
    a.apply(schedule[i]);
    b.apply(schedule[i]);
  }
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(ja.str(), jb.str());  // journal bytes identical too
  EXPECT_EQ(a.stats().degraded_entries, 1u);
}

}  // namespace
}  // namespace pubsub
