#include <gtest/gtest.h>

#include <map>

#include "core/grid.h"
#include "workload/publication_model.h"

namespace pubsub {
namespace {

// Small hand-built workload on a 2-D space: attributes a ∈ {0..3},
// b ∈ {0..2}.  Publications uniform.
Workload SmallWorkload() {
  Workload wl;
  wl.space = EventSpace({{"a", 4}, {"b", 3}});
  auto add = [&wl](Interval ia, Interval ib) {
    Subscriber s;
    s.node = static_cast<NodeId>(wl.subscribers.size());
    s.interest = Rect({ia, ib});
    wl.subscribers.push_back(std::move(s));
  };
  add(Interval(-1, 1), Interval::All());     // sub 0: a∈{0,1}, all b
  add(Interval(0, 2), Interval(-1, 0));      // sub 1: a∈{1,2}, b=0
  add(Interval::Point(3), Interval::Point(2));  // sub 2: a=3, b=2
  return wl;
}

std::unique_ptr<PublicationModel> UniformPub(const Workload& wl) {
  std::vector<Marginal1D> marginals;
  for (std::size_t d = 0; d < wl.space.dims(); ++d)
    marginals.push_back(Marginal1D::UniformInt(wl.space.dim(d).domain_size));
  return std::make_unique<ProductPublicationModel>(wl.space, std::move(marginals),
                                                   std::vector<NodeId>{0});
}

TEST(Grid, MembershipMatchesBruteForce) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);

  EXPECT_EQ(grid.num_lattice_cells(), 12);
  // Brute force: for each integer cell, check rect intersection directly.
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 3; ++b) {
      const Rect cell({Interval::Point(a), Interval::Point(b)});
      BitVector expect(wl.num_subscribers());
      for (std::size_t i = 0; i < wl.subscribers.size(); ++i)
        if (wl.subscribers[i].interest.intersects(cell)) expect.set(i);

      const std::int64_t id = grid.cell_of(Point{static_cast<double>(a),
                                                 static_cast<double>(b)});
      ASSERT_GE(id, 0);
      EXPECT_EQ(grid.cell_rect(id), cell);
      const int hyper = grid.hyper_cell_of(id);
      if (expect.none()) {
        EXPECT_EQ(hyper, -1);
      } else {
        ASSERT_GE(hyper, 0);
        EXPECT_EQ(grid.hyper_cells()[static_cast<std::size_t>(hyper)].members, expect);
      }
    }
  }
}

TEST(Grid, HyperCellsMergeIdenticalMembership) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);

  // Membership patterns by hand:
  //   a∈{0,1},b∈{1,2} → {0}        (4 cells)
  //   a∈{0},b=0       → {0}        …same vector, merges with the above
  //   a=1,b=0         → {0,1}
  //   a=2,b=0         → {1}
  //   a=3,b=2         → {2}
  //   a∈{2,3} others  → {} (no hyper-cell)
  std::map<std::string, int> by_pattern;
  for (const HyperCell& hc : grid.hyper_cells())
    ++by_pattern[hc.members.to_string()];
  EXPECT_EQ(by_pattern.size(), grid.hyper_cells().size());  // all distinct
  EXPECT_EQ(grid.hyper_cells().size(), 4u);
  // {0} hyper-cell owns 5 lattice cells.
  for (const HyperCell& hc : grid.hyper_cells())
    if (hc.members.to_string() == "100") EXPECT_EQ(hc.cells.size(), 5u);
}

TEST(Grid, ProbabilitiesSumToCoveredMass) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  // 8 of 12 cells have at least one subscriber (brute force above):
  // a∈{0,1} all b (6 cells) + (2,0) + (3,2).
  EXPECT_EQ(grid.num_occupied_cells(), 8);
  double total = 0;
  for (const HyperCell& hc : grid.hyper_cells()) total += hc.prob;
  EXPECT_NEAR(total, 8.0 / 12.0, 1e-12);
}

TEST(Grid, HyperCellsSortedByPopularity) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  for (std::size_t i = 1; i < grid.hyper_cells().size(); ++i)
    EXPECT_GE(grid.hyper_cells()[i - 1].popularity, grid.hyper_cells()[i].popularity);
  for (const HyperCell& hc : grid.hyper_cells())
    EXPECT_DOUBLE_EQ(hc.popularity,
                     hc.prob * static_cast<double>(hc.members.count()));
}

TEST(Grid, CellOfRejectsOutOfDomain) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  EXPECT_EQ(grid.cell_of(Point{-1.0, 0.0}), -1);
  EXPECT_EQ(grid.cell_of(Point{4.0, 0.0}), -1);
  EXPECT_EQ(grid.cell_of(Point{0.0, 3.0}), -1);
  EXPECT_GE(grid.cell_of(Point{3.0, 2.0}), 0);
}

TEST(Grid, CellRectRoundTripsAllCells) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 3; ++b) {
      const Point p{static_cast<double>(a), static_cast<double>(b)};
      const std::int64_t id = grid.cell_of(p);
      EXPECT_TRUE(grid.cell_rect(id).contains(p));
    }
}

TEST(Grid, TopCellsTruncatesAndPreservesOrder) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  const auto all = grid.top_cells(0);
  EXPECT_EQ(all.size(), grid.hyper_cells().size());
  const auto two = grid.top_cells(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].members, &grid.hyper_cells()[0].members);
  EXPECT_EQ(two[1].members, &grid.hyper_cells()[1].members);
  const auto many = grid.top_cells(100);
  EXPECT_EQ(many.size(), grid.hyper_cells().size());
}

TEST(Grid, SubscriberOutsideDomainIgnored) {
  Workload wl;
  wl.space = EventSpace({{"a", 4}});
  Subscriber s;
  s.node = 0;
  s.interest = Rect({Interval(10, 20)});  // entirely outside
  wl.subscribers.push_back(s);
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  EXPECT_EQ(grid.num_occupied_cells(), 0);
  EXPECT_TRUE(grid.hyper_cells().empty());
}

}  // namespace
}  // namespace pubsub
