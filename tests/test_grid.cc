#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/grid.h"
#include "workload/publication_model.h"

namespace pubsub {
namespace {

// Small hand-built workload on a 2-D space: attributes a ∈ {0..3},
// b ∈ {0..2}.  Publications uniform.
Workload SmallWorkload() {
  Workload wl;
  wl.space = EventSpace({{"a", 4}, {"b", 3}});
  auto add = [&wl](Interval ia, Interval ib) {
    Subscriber s;
    s.node = static_cast<NodeId>(wl.subscribers.size());
    s.interest = Rect({ia, ib});
    wl.subscribers.push_back(std::move(s));
  };
  add(Interval(-1, 1), Interval::All());     // sub 0: a∈{0,1}, all b
  add(Interval(0, 2), Interval(-1, 0));      // sub 1: a∈{1,2}, b=0
  add(Interval::Point(3), Interval::Point(2));  // sub 2: a=3, b=2
  return wl;
}

std::unique_ptr<PublicationModel> UniformPub(const Workload& wl) {
  std::vector<Marginal1D> marginals;
  for (std::size_t d = 0; d < wl.space.dims(); ++d)
    marginals.push_back(Marginal1D::UniformInt(wl.space.dim(d).domain_size));
  return std::make_unique<ProductPublicationModel>(wl.space, std::move(marginals),
                                                   std::vector<NodeId>{0});
}

TEST(Grid, MembershipMatchesBruteForce) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);

  EXPECT_EQ(grid.num_lattice_cells(), 12);
  // Brute force: for each integer cell, check rect intersection directly.
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 3; ++b) {
      const Rect cell({Interval::Point(a), Interval::Point(b)});
      BitVector expect(wl.num_subscribers());
      for (std::size_t i = 0; i < wl.subscribers.size(); ++i)
        if (wl.subscribers[i].interest.intersects(cell)) expect.set(i);

      const std::int64_t id = grid.cell_of(Point{static_cast<double>(a),
                                                 static_cast<double>(b)});
      ASSERT_GE(id, 0);
      EXPECT_EQ(grid.cell_rect(id), cell);
      const int hyper = grid.hyper_cell_of(id);
      if (expect.none()) {
        EXPECT_EQ(hyper, -1);
      } else {
        ASSERT_GE(hyper, 0);
        EXPECT_EQ(grid.hyper_cells()[static_cast<std::size_t>(hyper)].members, expect);
      }
    }
  }
}

TEST(Grid, HyperCellsMergeIdenticalMembership) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);

  // Membership patterns by hand:
  //   a∈{0,1},b∈{1,2} → {0}        (4 cells)
  //   a∈{0},b=0       → {0}        …same vector, merges with the above
  //   a=1,b=0         → {0,1}
  //   a=2,b=0         → {1}
  //   a=3,b=2         → {2}
  //   a∈{2,3} others  → {} (no hyper-cell)
  std::map<std::string, int> by_pattern;
  for (const HyperCell& hc : grid.hyper_cells())
    ++by_pattern[hc.members.to_string()];
  EXPECT_EQ(by_pattern.size(), grid.hyper_cells().size());  // all distinct
  EXPECT_EQ(grid.hyper_cells().size(), 4u);
  // {0} hyper-cell owns 5 lattice cells.
  for (const HyperCell& hc : grid.hyper_cells())
    if (hc.members.to_string() == "100") EXPECT_EQ(hc.cells.size(), 5u);
}

TEST(Grid, ProbabilitiesSumToCoveredMass) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  // 8 of 12 cells have at least one subscriber (brute force above):
  // a∈{0,1} all b (6 cells) + (2,0) + (3,2).
  EXPECT_EQ(grid.num_occupied_cells(), 8);
  double total = 0;
  for (const HyperCell& hc : grid.hyper_cells()) total += hc.prob;
  EXPECT_NEAR(total, 8.0 / 12.0, 1e-12);
}

TEST(Grid, HyperCellsSortedByPopularity) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  for (std::size_t i = 1; i < grid.hyper_cells().size(); ++i)
    EXPECT_GE(grid.hyper_cells()[i - 1].popularity, grid.hyper_cells()[i].popularity);
  for (const HyperCell& hc : grid.hyper_cells())
    EXPECT_DOUBLE_EQ(hc.popularity,
                     hc.prob * static_cast<double>(hc.members.count()));
}

TEST(Grid, CellOfRejectsOutOfDomain) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  EXPECT_EQ(grid.cell_of(Point{-1.0, 0.0}), -1);
  EXPECT_EQ(grid.cell_of(Point{4.0, 0.0}), -1);
  EXPECT_EQ(grid.cell_of(Point{0.0, 3.0}), -1);
  EXPECT_GE(grid.cell_of(Point{3.0, 2.0}), 0);
}

TEST(Grid, CellRectRoundTripsAllCells) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 3; ++b) {
      const Point p{static_cast<double>(a), static_cast<double>(b)};
      const std::int64_t id = grid.cell_of(p);
      EXPECT_TRUE(grid.cell_rect(id).contains(p));
    }
}

TEST(Grid, TopCellsTruncatesAndPreservesOrder) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  const auto all = grid.top_cells(0);
  EXPECT_EQ(all.size(), grid.hyper_cells().size());
  const auto two = grid.top_cells(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].members, &grid.hyper_cells()[0].members);
  EXPECT_EQ(two[1].members, &grid.hyper_cells()[1].members);
  const auto many = grid.top_cells(100);
  EXPECT_EQ(many.size(), grid.hyper_cells().size());
}

// Brute-force cross-check of the rasterization ranges against the
// Interval/Rect (lo, hi] semantics: for every endpoint combination —
// integer, half-integer and unbounded — GridCellsIntersecting must select
// exactly the values v whose unit cell (v−1, v] intersects the interval.
TEST(Grid, CellsIntersectingMatchesIntervalSemantics) {
  for (const int domain : {1, 2, 3, 5}) {
    std::vector<double> endpoints{-Interval::kInf, Interval::kInf};
    for (double v = -3.0; v <= domain + 2.0; v += 0.5) endpoints.push_back(v);
    for (const double lo : endpoints) {
      for (const double hi : endpoints) {
        const Interval iv(lo, hi);
        const GridValueRange r = GridCellsIntersecting(iv, domain);
        for (int v = 0; v < domain; ++v) {
          const bool expect = Interval::Point(v).intersects(iv);
          const bool got = v >= r.first && v <= r.last;
          EXPECT_EQ(got, expect)
              << "domain=" << domain << " iv=" << iv.to_string() << " v=" << v;
        }
      }
    }
  }
}

// No subscriber may be dropped from the cell holding its interval's lower
// boundary: for any event coordinate x the subscriber's interval contains,
// the cell of x (v = ceil(x), the (v−1, v] convention of Grid::cell_of)
// must fall inside the subscriber's rasterized range.
TEST(Grid, NoSubscriberDroppedAtIntervalBoundary) {
  for (const int domain : {1, 3, 6}) {
    std::vector<double> endpoints{-Interval::kInf, Interval::kInf};
    for (double v = -2.0; v <= domain + 1.0; v += 0.25) endpoints.push_back(v);
    for (const double lo : endpoints) {
      for (const double hi : endpoints) {
        const Interval iv(lo, hi);
        const GridValueRange r = GridCellsIntersecting(iv, domain);
        for (double x = -1.0; x <= domain - 1.0; x += 0.125) {
          if (!iv.contains(x)) continue;
          const int v = static_cast<int>(std::ceil(x));
          if (v < 0 || v >= domain) continue;
          EXPECT_TRUE(v >= r.first && v <= r.last)
              << "domain=" << domain << " iv=" << iv.to_string() << " x=" << x;
        }
      }
    }
  }
}

// Far-out-of-domain finite endpoints used to flow into unguarded
// double→int casts (undefined behaviour for values beyond int range); the
// clamped form must stay well-defined and exact.
TEST(Grid, CellsIntersectingHandlesExtremeEndpoints) {
  const int domain = 10;
  const GridValueRange below = GridCellsIntersecting(Interval(-2e18, -1e18), domain);
  EXPECT_GT(below.first, below.last);  // empty
  const GridValueRange above = GridCellsIntersecting(Interval(1e18, 2e18), domain);
  EXPECT_GT(above.first, above.last);  // empty
  const GridValueRange all = GridCellsIntersecting(Interval(-1e18, 1e18), domain);
  EXPECT_EQ(all.first, 0);
  EXPECT_EQ(all.last, domain - 1);
}

TEST(Grid, ClusterNeighborsMatchBruteForceAdjacency) {
  const Workload wl = SmallWorkload();
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  const std::size_t n = grid.hyper_cells().size();
  ASSERT_GT(n, 1u);

  // Brute force: two hyper cells are neighbors iff some pair of their
  // lattice cells is axis-adjacent.
  std::vector<std::set<int>> want(n);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 3; ++b) {
      const int h = grid.hyper_cell_of(grid.cell_of(
          Point{static_cast<double>(a), static_cast<double>(b)}));
      if (h < 0) continue;
      const auto link = [&](int a2, int b2) {
        if (a2 >= 4 || b2 >= 3) return;
        const int h2 = grid.hyper_cell_of(grid.cell_of(
            Point{static_cast<double>(a2), static_cast<double>(b2)}));
        if (h2 < 0 || h2 == h) return;
        want[static_cast<std::size_t>(h)].insert(h2);
        want[static_cast<std::size_t>(h2)].insert(h);
      };
      link(a + 1, b);
      link(a, b + 1);
    }
  }

  const auto got = grid.cluster_neighbors(0);
  ASSERT_EQ(got.size(), n);
  for (std::size_t h = 0; h < n; ++h) {
    EXPECT_EQ(std::set<int>(got[h].begin(), got[h].end()), want[h]) << h;
    // Sorted and duplicate-free (the k-means closure relies on neither,
    // but the contract says so).
    EXPECT_TRUE(std::is_sorted(got[h].begin(), got[h].end()));
    EXPECT_EQ(std::adjacent_find(got[h].begin(), got[h].end()), got[h].end());
  }

  // Truncation: with top_n = 1 only hyper cell 0 is listed and it may only
  // reference ids below the cut.
  const auto top1 = grid.cluster_neighbors(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_TRUE(top1[0].empty());
}

TEST(Grid, SubscriberOutsideDomainIgnored) {
  Workload wl;
  wl.space = EventSpace({{"a", 4}});
  Subscriber s;
  s.node = 0;
  s.interest = Rect({Interval(10, 20)});  // entirely outside
  wl.subscribers.push_back(s);
  const auto pub = UniformPub(wl);
  const Grid grid(wl, *pub);
  EXPECT_EQ(grid.num_occupied_cells(), 0);
  EXPECT_TRUE(grid.hyper_cells().empty());
}

}  // namespace
}  // namespace pubsub
