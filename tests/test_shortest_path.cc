#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "net/graph.h"
#include "net/shortest_path.h"

namespace pubsub {
namespace {

Graph LineGraph(int n, double cost = 1.0) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, cost);
  return g;
}

TEST(Dijkstra, LineGraphDistances) {
  const Graph g = LineGraph(5, 2.0);
  const ShortestPathTree t = Dijkstra(g, 0);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(t.dist[v], 2.0 * v);
  EXPECT_EQ(t.parent[0], -1);
  EXPECT_EQ(t.parent[3], 2);
}

TEST(Dijkstra, PrefersCheaperLongerPath) {
  Graph g(3);
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const ShortestPathTree t = Dijkstra(g, 0);
  EXPECT_EQ(t.dist[2], 2.0);
  EXPECT_EQ(t.parent[2], 1);
}

TEST(Dijkstra, UnreachableNodesFlagged) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const ShortestPathTree t = Dijkstra(g, 0);
  EXPECT_TRUE(t.reachable(1));
  EXPECT_FALSE(t.reachable(2));
  EXPECT_EQ(t.dist[2], std::numeric_limits<double>::infinity());
  EXPECT_THROW(t.path_to(2), std::invalid_argument);
}

TEST(Dijkstra, PathToWalksTree) {
  const Graph g = LineGraph(4);
  const ShortestPathTree t = Dijkstra(g, 0);
  EXPECT_EQ(t.path_to(3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(t.path_to(0), (std::vector<NodeId>{0}));
}

// Property: Dijkstra distances equal Floyd-Warshall on random graphs.
class DijkstraRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraRandomTest, MatchesFloydWarshall) {
  std::mt19937_64 rng(GetParam());
  const int n = 2 + static_cast<int>(rng() % 20);
  Graph g(n);
  // Random connected graph: spanning tree + chords.
  for (int v = 1; v < n; ++v)
    g.add_edge(v, static_cast<int>(rng() % v), 1.0 + static_cast<double>(rng() % 10));
  const int chords = static_cast<int>(rng() % (2 * n));
  for (int c = 0; c < chords; ++c) {
    const int u = static_cast<int>(rng() % n), v = static_cast<int>(rng() % n);
    if (u != v) g.add_edge(u, v, 1.0 + static_cast<double>(rng() % 10));
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> fw(n, std::vector<double>(n, kInf));
  for (int v = 0; v < n; ++v) fw[v][v] = 0;
  for (const Edge& e : g.edges()) {
    fw[e.u][e.v] = std::min(fw[e.u][e.v], e.cost);
    fw[e.v][e.u] = std::min(fw[e.v][e.u], e.cost);
  }
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) fw[i][j] = std::min(fw[i][j], fw[i][k] + fw[k][j]);

  for (int root = 0; root < n; ++root) {
    const ShortestPathTree t = Dijkstra(g, root);
    for (int v = 0; v < n; ++v) EXPECT_DOUBLE_EQ(t.dist[v], fw[root][v]);
    // Tree consistency: dist[v] = dist[parent] + parent edge cost.
    for (int v = 0; v < n; ++v) {
      if (t.parent[v] == -1) continue;
      EXPECT_DOUBLE_EQ(t.dist[v],
                       t.dist[t.parent[v]] + g.edge(t.parent_edge[v]).cost);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandomTest, ::testing::Range(0, 12));

TEST(DistanceMatrix, SymmetricAndMatchesDijkstra) {
  std::mt19937_64 rng(99);
  const int n = 15;
  Graph g(n);
  for (int v = 1; v < n; ++v)
    g.add_edge(v, static_cast<int>(rng() % v), 1.0 + static_cast<double>(rng() % 5));
  g.add_edge(0, n - 1, 3.0);

  const DistanceMatrix dm(g);
  EXPECT_EQ(dm.num_nodes(), n);
  const ShortestPathTree t = Dijkstra(g, 4);
  for (int v = 0; v < n; ++v) {
    EXPECT_DOUBLE_EQ(dm(4, v), t.dist[v]);
    EXPECT_DOUBLE_EQ(dm(4, v), dm(v, 4));
  }
  for (int v = 0; v < n; ++v) EXPECT_EQ(dm(v, v), 0.0);
}

}  // namespace
}  // namespace pubsub
