#include <gtest/gtest.h>

#include <random>
#include <set>

#include "net/multicast.h"
#include "net/shortest_path.h"
#include "net/transit_stub.h"

namespace pubsub {
namespace {

// Reference pruned-SPT cost: materialize the union of root→member path
// edges and sum their costs.
double NaivePrunedCost(const Graph& g, const ShortestPathTree& t,
                       const std::vector<NodeId>& members) {
  std::set<EdgeId> edges;
  for (const NodeId m : members)
    for (NodeId v = m; t.parent[v] != -1; v = t.parent[v]) edges.insert(t.parent_edge[v]);
  double total = 0;
  for (const EdgeId e : edges) total += g.edge(e).cost;
  return total;
}

Graph StarGraph(int leaves, double cost) {
  Graph g(leaves + 1);
  for (int i = 1; i <= leaves; ++i) g.add_edge(0, i, cost);
  return g;
}

TEST(UnicastCost, SumsPerSubscriberPaths) {
  const Graph g = StarGraph(3, 2.0);
  const ShortestPathTree t = Dijkstra(g, 0);
  const std::vector<NodeId> targets = {1, 2, 2, 3};  // duplicate pays twice
  EXPECT_EQ(UnicastCost(t, targets), 8.0);
  EXPECT_EQ(UnicastCost(t, std::vector<NodeId>{}), 0.0);
  EXPECT_EQ(UnicastCost(t, std::vector<NodeId>{0}), 0.0);  // root is free
}

TEST(BroadcastCost, EqualsFullTreeCost) {
  const Graph g = StarGraph(4, 3.0);
  EXPECT_EQ(BroadcastCost(Dijkstra(g, 0)), 12.0);
  EXPECT_EQ(BroadcastCost(Dijkstra(g, 2)), 12.0);  // same tree edges
}

TEST(PrunedSptCostTest, SharedPathCountedOnce) {
  // Line 0-1-2-3: members {2,3} share edges 0-1,1-2.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const ShortestPathTree t = Dijkstra(g, 0);
  PrunedSptCost pruner(g);
  EXPECT_EQ(pruner.cost(t, std::vector<NodeId>{3}), 3.0);
  EXPECT_EQ(pruner.cost(t, std::vector<NodeId>{2, 3}), 3.0);
  EXPECT_EQ(pruner.cost(t, std::vector<NodeId>{3, 2}), 3.0);
  EXPECT_EQ(pruner.cost(t, std::vector<NodeId>{1, 3}), 3.0);
  EXPECT_EQ(pruner.cost(t, std::vector<NodeId>{0}), 0.0);
  EXPECT_EQ(pruner.cost(t, std::vector<NodeId>{}), 0.0);
  // Duplicates are free for multicast.
  EXPECT_EQ(pruner.cost(t, std::vector<NodeId>{3, 3, 3}), 3.0);
}

class PrunedSptRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PrunedSptRandomTest, MatchesNaiveUnionOfPaths) {
  Rng net_rng(static_cast<std::uint64_t>(GetParam()));
  TransitStubParams p;
  p.transit_blocks = 2;
  p.transit_nodes_per_block = 2;
  p.stubs_per_transit_node = 2;
  p.nodes_per_stub = 6;
  const TransitStubNetwork net = GenerateTransitStub(p, net_rng);
  const Graph& g = net.graph;

  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 100);
  PrunedSptCost pruner(g);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId root = static_cast<NodeId>(rng() % g.num_nodes());
    const ShortestPathTree t = Dijkstra(g, root);
    std::vector<NodeId> members;
    const int count = 1 + static_cast<int>(rng() % 10);
    for (int i = 0; i < count; ++i)
      members.push_back(static_cast<NodeId>(rng() % g.num_nodes()));
    EXPECT_DOUBLE_EQ(pruner.cost(t, members), NaivePrunedCost(g, t, members));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunedSptRandomTest, ::testing::Range(0, 6));

TEST(PrunedSptCostTest, MonotoneInMemberSet) {
  Rng net_rng(17);
  const TransitStubNetwork net = GenerateTransitStub(PaperNet100(), net_rng);
  const ShortestPathTree t = Dijkstra(net.graph, 0);
  PrunedSptCost pruner(net.graph);
  std::vector<NodeId> members;
  double prev = 0;
  for (NodeId v = 1; v < net.graph.num_nodes(); v += 7) {
    members.push_back(v);
    const double c = pruner.cost(t, members);
    EXPECT_GE(c, prev);
    prev = c;
  }
  // Full membership never exceeds broadcast.
  members.clear();
  for (NodeId v = 0; v < net.graph.num_nodes(); ++v) members.push_back(v);
  EXPECT_DOUBLE_EQ(pruner.cost(t, members), BroadcastCost(t));
}

TEST(AppLevelMulticast, SingleMemberPaysUnicastPath) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const DistanceMatrix dm(g);
  EXPECT_EQ(AppLevelMulticastCost(dm, 0, std::vector<NodeId>{2}), 5.0);
  EXPECT_EQ(AppLevelMulticastCost(dm, 0, std::vector<NodeId>{}), 0.0);
  EXPECT_EQ(AppLevelMulticastCost(dm, 0, std::vector<NodeId>{0}), 0.0);
}

TEST(AppLevelMulticast, RelaysThroughMembers) {
  // Line 0-1-2: members {1,2} rooted at 0 relay 0→1→2 (cost 2+3), not two
  // unicasts (2 + 5).
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const DistanceMatrix dm(g);
  EXPECT_EQ(AppLevelMulticastCost(dm, 0, std::vector<NodeId>{1, 2}), 5.0);
  // Duplicates deduplicated.
  EXPECT_EQ(AppLevelMulticastCost(dm, 0, std::vector<NodeId>{1, 1, 2, 2}), 5.0);
}

TEST(AppLevelMulticast, NeverCheaperThanIdealSpanOfSameSet) {
  // App-level trees use unicast distances, so each edge is at least the
  // direct metric distance; cost must be >= the pruned SPT from the root…
  // on a *tree* topology, where the pruned SPT is the optimal Steiner tree.
  Rng net_rng(23);
  TransitStubParams p;
  p.transit_blocks = 1;
  p.transit_nodes_per_block = 2;
  p.stubs_per_transit_node = 2;
  p.nodes_per_stub = 5;
  p.extra_edge_prob = 0.0;  // pure spanning trees at every level
  const TransitStubNetwork net = GenerateTransitStub(p, net_rng);
  const DistanceMatrix dm(net.graph);
  PrunedSptCost pruner(net.graph);
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId root = static_cast<NodeId>(rng() % net.graph.num_nodes());
    const ShortestPathTree t = Dijkstra(net.graph, root);
    std::vector<NodeId> members;
    for (int i = 0; i < 6; ++i)
      members.push_back(static_cast<NodeId>(rng() % net.graph.num_nodes()));
    EXPECT_GE(AppLevelMulticastCost(dm, root, members) + 1e-9,
              pruner.cost(t, members));
  }
}

}  // namespace
}  // namespace pubsub
