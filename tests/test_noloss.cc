#include "core/noloss.h"

#include <gtest/gtest.h>

#include "workload/publication_model.h"

namespace pubsub {
namespace {

// 1-D workload with overlapping interests; uniform publications.
Workload LineWorkload() {
  Workload wl;
  wl.space = EventSpace({{"x", 20}});
  auto add = [&wl](double lo, double hi) {
    Subscriber s;
    s.node = static_cast<NodeId>(wl.subscribers.size());
    s.interest = Rect({Interval(lo, hi)});
    wl.subscribers.push_back(std::move(s));
  };
  add(-1, 9);   // 0
  add(4, 14);   // 1
  add(4, 9);    // 2  (the intersection of 0 and 1)
  add(15, 19);  // 3  (disjoint from the rest)
  return wl;
}

std::unique_ptr<PublicationModel> UniformPub(const Workload& wl) {
  std::vector<Marginal1D> m;
  for (std::size_t d = 0; d < wl.space.dims(); ++d)
    m.push_back(Marginal1D::UniformInt(wl.space.dim(d).domain_size));
  return std::make_unique<ProductPublicationModel>(wl.space, std::move(m),
                                                   std::vector<NodeId>{0});
}

TEST(NoLoss, MembersAlwaysContainGroupRect) {
  const Workload wl = LineWorkload();
  const auto pub = UniformPub(wl);
  const NoLossResult r = NoLossCluster(wl, *pub);
  ASSERT_FALSE(r.groups.empty());
  for (const NoLossGroup& g : r.groups) {
    EXPECT_FALSE(g.rect.empty());
    g.subscribers.for_each_set([&](std::size_t i) {
      EXPECT_TRUE(wl.subscribers[i].interest.contains(g.rect))
          << "subscriber " << i << " does not contain " << g.rect.to_string();
    });
  }
}

TEST(NoLoss, MembershipIsExactlyContainingSubscribers) {
  const Workload wl = LineWorkload();
  const auto pub = UniformPub(wl);
  const NoLossResult r = NoLossCluster(wl, *pub);
  for (const NoLossGroup& g : r.groups) {
    for (std::size_t i = 0; i < wl.subscribers.size(); ++i) {
      EXPECT_EQ(g.subscribers.test(i), wl.subscribers[i].interest.contains(g.rect))
          << g.rect.to_string() << " sub " << i;
    }
  }
}

TEST(NoLoss, FindsThePopularIntersection) {
  const Workload wl = LineWorkload();
  const auto pub = UniformPub(wl);
  const NoLossResult r = NoLossCluster(wl, *pub);
  // (4, 9] is contained in interests 0, 1 and 2 → weight 3·(5/20); it must
  // be the heaviest area.
  ASSERT_FALSE(r.groups.empty());
  EXPECT_EQ(r.groups[0].rect, Rect({Interval(4, 9)}));
  EXPECT_EQ(r.groups[0].subscribers.count(), 3u);
  EXPECT_NEAR(r.groups[0].weight, 3.0 * 5.0 / 20.0, 1e-12);
}

TEST(NoLoss, WeightsSortedDescending) {
  const Workload wl = LineWorkload();
  const auto pub = UniformPub(wl);
  const NoLossResult r = NoLossCluster(wl, *pub);
  for (std::size_t i = 1; i < r.groups.size(); ++i)
    EXPECT_GE(r.groups[i - 1].weight, r.groups[i].weight);
}

TEST(NoLoss, WeightMatchesDefinition) {
  const Workload wl = LineWorkload();
  const auto pub = UniformPub(wl);
  const NoLossResult r = NoLossCluster(wl, *pub);
  for (const NoLossGroup& g : r.groups)
    EXPECT_NEAR(g.weight,
                pub->rect_mass(g.rect) * static_cast<double>(g.subscribers.count()),
                1e-12);
}

TEST(NoLoss, PoolBoundedByMaxRectangles) {
  const Workload wl = LineWorkload();
  const auto pub = UniformPub(wl);
  NoLossOptions opt;
  opt.max_rectangles = 3;
  opt.iterations = 4;
  const NoLossResult r = NoLossCluster(wl, *pub, opt);
  EXPECT_LE(r.groups.size(), 3u);
}

TEST(NoLoss, MoreIterationsNeverLoseTopWeight) {
  const Workload wl = LineWorkload();
  const auto pub = UniformPub(wl);
  NoLossOptions one;
  one.iterations = 1;
  NoLossOptions eight;
  eight.iterations = 8;
  const NoLossResult r1 = NoLossCluster(wl, *pub, one);
  const NoLossResult r8 = NoLossCluster(wl, *pub, eight);
  ASSERT_FALSE(r1.groups.empty());
  ASSERT_FALSE(r8.groups.empty());
  EXPECT_GE(r8.groups[0].weight, r1.groups[0].weight - 1e-12);
}

TEST(NoLoss, EmptyWorkload) {
  Workload wl;
  wl.space = EventSpace({{"x", 5}});
  const auto pub = UniformPub(wl);
  EXPECT_TRUE(NoLossCluster(wl, *pub).groups.empty());
}

TEST(NoLoss, DeduplicatesIdenticalInterests) {
  Workload wl;
  wl.space = EventSpace({{"x", 10}});
  for (int i = 0; i < 5; ++i) {
    Subscriber s;
    s.node = i;
    s.interest = Rect({Interval(2, 6)});
    wl.subscribers.push_back(std::move(s));
  }
  const auto pub = UniformPub(wl);
  const NoLossResult r = NoLossCluster(wl, *pub);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].subscribers.count(), 5u);
}

}  // namespace
}  // namespace pubsub
