#include <gtest/gtest.h>

#include <random>

#include "geometry/event_space.h"
#include "geometry/interval.h"
#include "geometry/rect.h"

namespace pubsub {
namespace {

// ---------------------------------------------------------------- Interval

TEST(Interval, HalfOpenMembership) {
  const Interval iv(2.0, 5.0);  // (2, 5]
  EXPECT_FALSE(iv.contains(2.0));
  EXPECT_TRUE(iv.contains(2.0001));
  EXPECT_TRUE(iv.contains(5.0));
  EXPECT_FALSE(iv.contains(5.0001));
}

TEST(Interval, EmptyWhenDegenerate) {
  EXPECT_TRUE(Interval(3.0, 3.0).empty());
  EXPECT_TRUE(Interval(4.0, 3.0).empty());
  EXPECT_FALSE(Interval(3.0, 3.0 + 1e-9).empty());
  EXPECT_TRUE(Interval().empty());
}

TEST(Interval, UnboundedFactories) {
  EXPECT_TRUE(Interval::All().is_all());
  EXPECT_TRUE(Interval::All().contains(1e100));
  EXPECT_TRUE(Interval::AtMost(5.0).contains(-1e100));
  EXPECT_TRUE(Interval::AtMost(5.0).contains(5.0));
  EXPECT_FALSE(Interval::AtMost(5.0).contains(5.1));
  EXPECT_FALSE(Interval::GreaterThan(5.0).contains(5.0));
  EXPECT_TRUE(Interval::GreaterThan(5.0).contains(5.1));
}

TEST(Interval, PointHoldsExactlyOneInteger) {
  const Interval p = Interval::Point(7);
  EXPECT_TRUE(p.contains(7.0));
  EXPECT_FALSE(p.contains(6.0));
  EXPECT_FALSE(p.contains(8.0));
  EXPECT_EQ(p.length(), 1.0);
}

TEST(Interval, AdjacentPointIntervalsTileWithoutOverlap) {
  // The half-open convention: (v−1, v] and (v, v+1] share no point.
  EXPECT_FALSE(Interval::Point(3).intersects(Interval::Point(4)));
  EXPECT_FALSE(Interval(0.0, 1.0).intersects(Interval(1.0, 2.0)));
  EXPECT_TRUE(Interval(0.0, 1.0).intersects(Interval(0.9, 2.0)));
}

TEST(Interval, IntersectionAndHull) {
  const Interval a(0.0, 4.0), b(2.0, 6.0);
  EXPECT_EQ(a.intersection(b), Interval(2.0, 4.0));
  EXPECT_EQ(a.hull(b), Interval(0.0, 6.0));
  const Interval disjoint(10.0, 12.0);
  EXPECT_TRUE(a.intersection(disjoint).empty());
  EXPECT_EQ(a.hull(Interval()), a);
  EXPECT_EQ(Interval().hull(a), a);
}

TEST(Interval, ContainmentSemantics) {
  const Interval a(0.0, 10.0);
  EXPECT_TRUE(a.contains(Interval(2.0, 5.0)));
  EXPECT_TRUE(a.contains(a));
  EXPECT_TRUE(a.contains(Interval()));  // empty contained in everything
  EXPECT_FALSE(a.contains(Interval(-1.0, 5.0)));
  EXPECT_FALSE(Interval(2.0, 5.0).contains(a));
}

TEST(Interval, AllEmptyIntervalsCompareEqual) {
  EXPECT_EQ(Interval(3.0, 3.0), Interval(7.0, 5.0));
  EXPECT_EQ(Interval(), Interval(9.0, 9.0));
}

// -------------------------------------------------------------------- Rect

Rect MakeRect(std::initializer_list<std::pair<double, double>> bounds) {
  std::vector<Interval> ivals;
  for (const auto& [lo, hi] : bounds) ivals.emplace_back(lo, hi);
  return Rect(std::move(ivals));
}

TEST(Rect, ContainsPointPerDimension) {
  const Rect r = MakeRect({{0, 2}, {0, 2}});
  EXPECT_TRUE(r.contains(Point{1.0, 1.0}));
  EXPECT_TRUE(r.contains(Point{2.0, 2.0}));   // closed right edge
  EXPECT_FALSE(r.contains(Point{0.0, 1.0}));  // open left edge
  EXPECT_FALSE(r.contains(Point{1.0, 2.5}));
}

TEST(Rect, EmptyIfAnyDimensionEmpty) {
  EXPECT_TRUE(MakeRect({{0, 2}, {3, 3}}).empty());
  EXPECT_FALSE(MakeRect({{0, 2}, {3, 4}}).empty());
  EXPECT_TRUE(Rect().empty());
}

TEST(Rect, IntersectionIsComponentwise) {
  const Rect a = MakeRect({{0, 4}, {0, 4}});
  const Rect b = MakeRect({{2, 6}, {-2, 1}});
  const Rect i = a.intersection(b);
  EXPECT_EQ(i[0], Interval(2, 4));
  EXPECT_EQ(i[1], Interval(0, 1));
  EXPECT_TRUE(a.intersects(b));
  const Rect far = MakeRect({{10, 12}, {0, 4}});
  EXPECT_FALSE(a.intersects(far));
  EXPECT_TRUE(a.intersection(far).empty());
}

TEST(Rect, HullAndContainment) {
  const Rect a = MakeRect({{0, 2}, {0, 2}});
  const Rect b = MakeRect({{1, 5}, {-1, 1}});
  const Rect h = a.hull(b);
  EXPECT_TRUE(h.contains(a));
  EXPECT_TRUE(h.contains(b));
  EXPECT_EQ(h[0], Interval(0, 5));
  EXPECT_EQ(h[1], Interval(-1, 2));
  EXPECT_TRUE(a.contains(MakeRect({{0.5, 1.5}, {0.5, 1.5}})));
  EXPECT_FALSE(a.contains(b));
}

TEST(Rect, VolumeMultipliesSideLengths) {
  EXPECT_EQ(MakeRect({{0, 2}, {0, 3}}).volume(), 6.0);
  EXPECT_EQ(MakeRect({{0, 2}, {3, 3}}).volume(), 0.0);
  const Rect unbounded({Interval::All(), Interval(0, 1)});
  EXPECT_EQ(unbounded.volume(), Interval::kInf);
}

TEST(Rect, RandomizedIntersectionConsistency) {
  std::mt19937_64 rng(11);
  auto rand_rect = [&rng]() {
    std::vector<Interval> ivals;
    for (int d = 0; d < 3; ++d) {
      double a = static_cast<double>(rng() % 20);
      double b = static_cast<double>(rng() % 20);
      if (a > b) std::swap(a, b);
      ivals.emplace_back(a, b + 1);
    }
    return Rect(std::move(ivals));
  };
  for (int t = 0; t < 200; ++t) {
    const Rect a = rand_rect(), b = rand_rect();
    // intersects() must agree with intersection() emptiness.
    EXPECT_EQ(a.intersects(b), !a.intersection(b).empty());
    // Hull contains both; intersection contained in both.
    EXPECT_TRUE(a.hull(b).contains(a));
    EXPECT_TRUE(a.hull(b).contains(b));
    if (a.intersects(b)) {
      EXPECT_TRUE(a.contains(a.intersection(b)));
      EXPECT_TRUE(b.contains(a.intersection(b)));
    }
  }
}

// ------------------------------------------------------------- EventSpace

TEST(EventSpace, DomainIntervalsCoverAllValues) {
  const EventSpace space({{"a", 3}, {"b", 21}});
  EXPECT_EQ(space.dims(), 2u);
  EXPECT_EQ(space.lattice_size(), 63u);
  const Interval d0 = space.domain_interval(0);
  for (int v = 0; v < 3; ++v) EXPECT_TRUE(d0.contains(EventSpace::value_coord(v)));
  EXPECT_FALSE(d0.contains(-1.0));
  EXPECT_FALSE(d0.contains(3.0));
  EXPECT_TRUE(space.domain_rect().contains(Point{2.0, 20.0}));
  EXPECT_FALSE(space.domain_rect().contains(Point{2.0, 21.0}));
}

TEST(EventSpace, ClampRoundsAndBounds) {
  const EventSpace space({{"a", 21}});
  EXPECT_EQ(space.clamp_to_domain(0, 5.4), 5.0);
  EXPECT_EQ(space.clamp_to_domain(0, 5.6), 6.0);
  EXPECT_EQ(space.clamp_to_domain(0, -3.0), 0.0);
  EXPECT_EQ(space.clamp_to_domain(0, 99.0), 20.0);
}

TEST(EventSpace, RejectsInvalidSpecs) {
  EXPECT_THROW(EventSpace(std::vector<DimensionSpec>{}), std::invalid_argument);
  EXPECT_THROW(EventSpace({{"a", 0}}), std::invalid_argument);
}

}  // namespace
}  // namespace pubsub
