#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "index/rtree.h"
#include "index/spatial_index.h"

namespace pubsub {
namespace {

Rect RandRect(std::mt19937_64& rng, int dims, int domain) {
  std::vector<Interval> ivals;
  for (int d = 0; d < dims; ++d) {
    double a = static_cast<double>(rng() % static_cast<unsigned>(domain));
    double b = static_cast<double>(rng() % static_cast<unsigned>(domain));
    if (a > b) std::swap(a, b);
    ivals.emplace_back(a - 1.0, b);
  }
  return Rect(std::move(ivals));
}

Point RandPoint(std::mt19937_64& rng, int dims, int domain) {
  Point p;
  for (int d = 0; d < dims; ++d)
    p.push_back(static_cast<double>(rng() % static_cast<unsigned>(domain)));
  return p;
}

std::vector<int> Sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(RTree, EmptyTreeAnswersNothing) {
  RTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0);
  EXPECT_TRUE(t.stab(Point{1.0, 1.0}).empty());
  EXPECT_TRUE(t.check_invariants());
}

TEST(RTree, RejectsEmptyAndUnboundedRects) {
  RTree t;
  EXPECT_THROW(t.insert(Rect({Interval(3, 3)}), 0), std::invalid_argument);
  EXPECT_THROW(t.insert(Rect({Interval::All()}), 0), std::invalid_argument);
}

TEST(RTree, SingleEntryStab) {
  RTree t;
  t.insert(Rect({Interval(0, 2), Interval(0, 2)}), 7);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.stab(Point{1.0, 1.0}), std::vector<int>{7});
  EXPECT_TRUE(t.stab(Point{0.0, 1.0}).empty());  // open left edge
  EXPECT_EQ(t.stab(Point{2.0, 2.0}), std::vector<int>{7});
  EXPECT_TRUE(t.check_invariants());
}

// Property suite: R-tree (incremental and bulk-loaded) must agree with the
// brute-force LinearIndex on stab, intersection and containment queries.
struct RTreeParam {
  int seed;
  int entries;
  bool bulk;
};

class RTreeOracleTest : public ::testing::TestWithParam<RTreeParam> {};

TEST_P(RTreeOracleTest, AgreesWithLinearIndex) {
  const RTreeParam param = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(param.seed));
  constexpr int kDims = 3, kDomain = 12;

  LinearIndex oracle;
  RTree tree;
  std::vector<std::pair<Rect, int>> items;
  for (int i = 0; i < param.entries; ++i) {
    const Rect r = RandRect(rng, kDims, kDomain);
    if (r.empty()) continue;
    oracle.insert(r, i);
    if (param.bulk)
      items.emplace_back(r, i);
    else
      tree.insert(r, i);
  }
  if (param.bulk) tree = RTree::BulkLoad(std::move(items));

  EXPECT_EQ(tree.size(), oracle.size());
  EXPECT_TRUE(tree.check_invariants());

  for (int q = 0; q < 60; ++q) {
    const Point p = RandPoint(rng, kDims, kDomain);
    EXPECT_EQ(Sorted(tree.stab(p)), Sorted(oracle.stab(p))) << "stab";
    const Rect w = RandRect(rng, kDims, kDomain);
    if (w.empty()) continue;
    EXPECT_EQ(Sorted(tree.intersecting(w)), Sorted(oracle.intersecting(w)))
        << "intersecting";
    EXPECT_EQ(Sorted(tree.containing(w)), Sorted(oracle.containing(w)))
        << "containing";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeOracleTest,
    ::testing::Values(RTreeParam{1, 10, false}, RTreeParam{2, 100, false},
                      RTreeParam{3, 800, false}, RTreeParam{4, 10, true},
                      RTreeParam{5, 100, true}, RTreeParam{6, 800, true},
                      RTreeParam{7, 2500, true}, RTreeParam{8, 2500, false}));

TEST(RTree, BulkLoadIsBalancedAndShallow) {
  std::mt19937_64 rng(9);
  std::vector<std::pair<Rect, int>> items;
  for (int i = 0; i < 4000; ++i) items.emplace_back(RandRect(rng, 2, 100), i);
  const RTree t = RTree::BulkLoad(std::move(items), 8);
  EXPECT_EQ(t.size(), 4000u);
  EXPECT_TRUE(t.check_invariants());
  // ceil(log_8(4000/8)) + 1 levels ≈ 4; give slack of one.
  EXPECT_LE(t.height(), 5);
}

TEST(RTree, IncrementalInsertKeepsInvariantsAsItGrows) {
  std::mt19937_64 rng(10);
  RTree t;
  for (int i = 0; i < 600; ++i) {
    t.insert(RandRect(rng, 2, 30), i);
    if (i % 50 == 0) EXPECT_TRUE(t.check_invariants()) << "after " << i;
  }
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.size(), 600u);
}

TEST(RTree, DuplicateRectanglesAllReported) {
  RTree t;
  const Rect r({Interval(0, 5)});
  for (int i = 0; i < 30; ++i) t.insert(r, i);
  EXPECT_EQ(t.stab(Point{3.0}).size(), 30u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(RTree, EraseRemovesExactEntryOnly) {
  RTree t;
  const Rect a({Interval(0, 2)});
  const Rect b({Interval(1, 3)});
  t.insert(a, 1);
  t.insert(b, 2);
  EXPECT_FALSE(t.erase(a, 2));  // id mismatch
  EXPECT_FALSE(t.erase(b, 1));  // rect mismatch
  EXPECT_TRUE(t.erase(a, 1));
  EXPECT_FALSE(t.erase(a, 1));  // already gone
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.stab(Point{1.5}), std::vector<int>{2});
  EXPECT_TRUE(t.check_invariants());
  EXPECT_TRUE(t.erase(b, 2));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.stab(Point{1.5}).empty());
  EXPECT_TRUE(t.check_invariants());
}

TEST(RTree, EraseUnderChurnMatchesOracle) {
  std::mt19937_64 rng(13);
  LinearIndex oracle_storage;  // only for generating rects
  std::vector<std::pair<Rect, int>> live;
  RTree tree;
  int next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    const bool remove = !live.empty() && (rng() % 3 == 0);
    if (remove) {
      const std::size_t i = rng() % live.size();
      EXPECT_TRUE(tree.erase(live[i].first, live[i].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const Rect r = RandRect(rng, 2, 20);
      if (r.empty()) continue;
      tree.insert(r, next_id);
      live.emplace_back(r, next_id);
      ++next_id;
    }
    if (step % 250 == 0) EXPECT_TRUE(tree.check_invariants()) << step;
  }
  EXPECT_EQ(tree.size(), live.size());
  EXPECT_TRUE(tree.check_invariants());

  // Final queries agree with a fresh brute-force index over the live set.
  LinearIndex oracle;
  for (const auto& [r, id] : live) oracle.insert(r, id);
  for (int q = 0; q < 40; ++q) {
    const Point p = RandPoint(rng, 2, 20);
    EXPECT_EQ(Sorted(tree.stab(p)), Sorted(oracle.stab(p)));
  }
}

TEST(RTree, EraseEverythingLeavesCleanTree) {
  std::mt19937_64 rng(14);
  RTree t;
  std::vector<std::pair<Rect, int>> items;
  for (int i = 0; i < 300; ++i) {
    const Rect r = RandRect(rng, 2, 15);
    if (r.empty()) continue;
    t.insert(r, i);
    items.emplace_back(r, i);
  }
  for (const auto& [r, id] : items) EXPECT_TRUE(t.erase(r, id));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0);
  EXPECT_TRUE(t.check_invariants());
  // The tree is reusable after full drain.
  t.insert(Rect({Interval(0, 1), Interval(0, 1)}), 7);
  EXPECT_EQ(t.stab(Point{0.5, 0.5}), std::vector<int>{7});
}

TEST(RTree, MoveSemantics) {
  RTree a;
  a.insert(Rect({Interval(0, 1)}), 1);
  RTree b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.stab(Point{0.5}), std::vector<int>{1});
}

}  // namespace
}  // namespace pubsub
