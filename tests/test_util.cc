// Tests for the small utility layer: stats, tables, flags, stopwatch.
#include <gtest/gtest.h>

#include <sstream>

#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"
#include "obs/clock.h"

namespace pubsub {
namespace {

TEST(RunningStatsTest, WelfordMatchesClosedForm) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
  EXPECT_NE(s.summary().find("n=1"), std::string::npos);
}

TEST(TextTableTest, AlignsColumnsAndFormatsCells) {
  TextTable t({"name", "value"});
  t.row().cell("x").cell(42);
  t.row().cell("longer-name").cell(3.14159, 2);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| longer-name |  3.14 |"), std::string::npos);
  EXPECT_NE(out.find("|        name | value |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TextTableTest, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--alpha=3", "--name=x y", "--flag",
                        "positional", "--ratio=0.5", "--no=false"};
  const Flags f(7, argv);
  EXPECT_EQ(f.program(), "prog");
  EXPECT_EQ(f.get_int("alpha", 0), 3);
  EXPECT_EQ(f.get("name", ""), "x y");
  EXPECT_TRUE(f.get_bool("flag", false));
  EXPECT_FALSE(f.get_bool("no", true));
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0.0), 0.5);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "positional");
}

TEST(FlagsTest, DefaultsAndErrors) {
  const char* argv[] = {"prog", "--bad=maybe"};
  const Flags f(2, argv);
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_EQ(f.get("missing", "d"), "d");
  EXPECT_FALSE(f.has("missing"));
  EXPECT_TRUE(f.has("bad"));
  EXPECT_THROW(f.get_bool("bad", false), std::invalid_argument);
}

TEST(FlagsTest, MalformedNumbersFailLoudly) {
  const char* argv[] = {"prog", "--threads=abc", "--ratio=0.5x", "--n=12"};
  const Flags f(4, argv);
  // A typo like --threads=abc must not silently run with a default (or
  // abort mid-parse like raw std::stoll): it names the flag and value.
  EXPECT_THROW(f.get_int("threads", 1), std::invalid_argument);
  EXPECT_THROW(f.get_double("ratio", 0.0), std::invalid_argument);
  try {
    f.get_int("threads", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("threads"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
  // Trailing junk counts as malformed; a clean value still parses.
  EXPECT_THROW(f.get_double("ratio", 0.0), std::invalid_argument);
  EXPECT_EQ(f.get_int("n", 0), 12);
}

TEST(FlagsTest, UnknownFlagDetection) {
  const char* argv[] = {"prog", "--threads=4", "--thread=8", "--verbose"};
  const Flags f(4, argv);
  // A mistyped flag *name* used to vanish into the value map; the
  // registration check surfaces it.
  EXPECT_EQ(f.unknown_flags({"threads", "verbose"}),
            (std::vector<std::string>{"thread"}));
  EXPECT_TRUE(f.unknown_flags({"threads", "thread", "verbose"}).empty());
  EXPECT_NO_THROW(f.require_known({"threads", "thread", "verbose"}));
  try {
    f.require_known({"threads"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--thread"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--verbose"), std::string::npos);
    // ...but the correctly spelled flag is not reported.
    EXPECT_EQ(std::string(e.what()).find("--threads"), std::string::npos);
  }
}

TEST(StopwatchClockTest, MeasuresElapsedTime) {
  StopwatchClock w;
  // Just sanity: non-negative and monotone.
  const double a = w.elapsed_seconds();
  const double b = w.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  w.restart();
  EXPECT_LT(w.elapsed_ms(), 1000.0);
  // StopwatchClock is also the default trace clock: now_ms() is the same
  // reading through the Clock interface.
  Clock& as_clock = w;
  EXPECT_GE(as_clock.now_ms(), 0.0);
}

}  // namespace
}  // namespace pubsub
