#include "sim/delivery.h"

#include <gtest/gtest.h>

namespace pubsub {
namespace {

// Star network: center 0, leaves 1..4 at cost 2 each.  Subscribers:
//   0 → node 1, 1 → node 1 (same node!), 2 → node 2, 3 → node 3.
struct StarFixture {
  StarFixture() : graph(5) {
    for (int i = 1; i <= 4; ++i) graph.add_edge(0, i, 2.0);
    wl.space = EventSpace({{"x", 10}});
    auto add = [this](NodeId node, double lo, double hi) {
      Subscriber s;
      s.node = node;
      s.interest = Rect({Interval(lo, hi)});
      wl.subscribers.push_back(std::move(s));
    };
    add(1, -1, 4);  // sub 0
    add(1, -1, 9);  // sub 1
    add(2, 3, 9);   // sub 2
    add(3, -1, 9);  // sub 3
  }
  Graph graph;
  Workload wl;
};

TEST(DeliverySimulator, InterestedUsesExactMatching) {
  StarFixture f;
  DeliverySimulator sim(f.graph, f.wl);
  auto sorted = [](std::vector<SubscriberId> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(sim.interested(Point{2.0})), (std::vector<SubscriberId>{0, 1, 3}));
  EXPECT_EQ(sorted(sim.interested(Point{7.0})), (std::vector<SubscriberId>{1, 2, 3}));
  EXPECT_EQ(sorted(sim.interested(Point{4.0})),
            (std::vector<SubscriberId>{0, 1, 2, 3}));
}

TEST(DeliverySimulator, UnicastPaysPerSubscriberEvenOnSharedNodes) {
  StarFixture f;
  DeliverySimulator sim(f.graph, f.wl);
  // Subscribers 0 and 1 both live on node 1: unicast pays twice.
  const std::vector<SubscriberId> subs = {0, 1, 2};
  EXPECT_EQ(sim.unicast_cost(0, subs), 6.0);
  // From a leaf publisher the path is leaf→center→leaf = 4 per subscriber
  // (0 to a subscriber on the same node).
  EXPECT_EQ(sim.unicast_cost(1, subs), 0.0 + 0.0 + 4.0);
}

TEST(DeliverySimulator, IdealMulticastPaysNodesOnce) {
  StarFixture f;
  DeliverySimulator sim(f.graph, f.wl);
  // Subscribers 0,1 (node 1) and 2 (node 2): tree = edges 0-1, 0-2.
  const std::vector<SubscriberId> subs = {0, 1, 2};
  EXPECT_EQ(sim.ideal_cost(0, subs), 4.0);
  EXPECT_EQ(sim.broadcast_cost(0), 8.0);
  EXPECT_EQ(sim.broadcast_cost(2), 8.0);
}

TEST(DeliverySimulator, ClusteredCostCombinesGroupAndUnicasts) {
  StarFixture f;
  DeliverySimulator sim(f.graph, f.wl);
  MatchDecision d;
  d.group_id = 0;
  const std::vector<SubscriberId> members = {0, 1};  // both node 1
  d.group_members = members;
  const std::vector<SubscriberId> unicasts = {2, 3};  // nodes 2 and 3
  d.unicast_targets = unicasts;
  // Tree to node 1 (cost 2) + unicasts 2 and 2.
  EXPECT_EQ(sim.clustered_cost_network(0, d), 6.0);

  MatchDecision pure;
  const std::vector<SubscriberId> pure_targets = {0, 1};
  pure.unicast_targets = pure_targets;
  EXPECT_EQ(sim.clustered_cost_network(0, pure), 4.0);

  MatchDecision none;
  EXPECT_EQ(sim.clustered_cost_network(0, none), 0.0);
}

TEST(DeliverySimulator, AppLevelRelaysThroughMembers) {
  // Line network 0 - 1 - 2 (costs 1, 1): group {node1, node2} from
  // publisher 0 relays 0→1→2 = 2; network multicast is also 2 here.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  Workload wl;
  wl.space = EventSpace({{"x", 4}});
  for (NodeId n = 1; n <= 2; ++n) {
    Subscriber s;
    s.node = n;
    s.interest = Rect({Interval(-1, 3)});
    wl.subscribers.push_back(std::move(s));
  }
  DeliverySimulator sim(g, wl);
  MatchDecision d;
  d.group_id = 0;
  const std::vector<SubscriberId> members = {0, 1};
  d.group_members = members;
  EXPECT_EQ(sim.clustered_cost_applevel(0, d), 2.0);
  EXPECT_EQ(sim.clustered_cost_network(0, d), 2.0);
  EXPECT_EQ(sim.ideal_cost_applevel(0, std::vector<SubscriberId>{0, 1}), 2.0);
}

TEST(DeliverySimulator, WastedDeliveriesCountsUninterestedMembers) {
  MatchDecision d;
  d.group_id = 0;
  const std::vector<SubscriberId> members = {0, 1, 2, 3};
  d.group_members = members;
  const std::vector<SubscriberId> interested = {1, 3};
  EXPECT_EQ(DeliverySimulator::wasted_deliveries(d, interested), 2u);
  MatchDecision unicast_only;
  EXPECT_EQ(DeliverySimulator::wasted_deliveries(unicast_only, interested), 0u);
}

}  // namespace
}  // namespace pubsub
