#include "runtime/delivery_runtime.h"

#include <gtest/gtest.h>

namespace pubsub {
namespace {

RuntimeParams SimpleParams() {
  RuntimeParams p;
  p.match_time_ms = 1.0;
  p.per_message_send_ms = 0.5;
  p.latency_per_cost_ms = 2.0;
  p.per_hop_processing_ms = 0.25;
  return p;
}

// Star: center 0, leaves 1..3, edge cost 3.
Graph Star() {
  Graph g(4);
  for (int i = 1; i <= 3; ++i) g.add_edge(0, i, 3.0);
  return g;
}

TEST(DeliveryRuntime, UnicastSerializesAtThePublisher) {
  const Graph g = Star();
  DeliveryRuntime rt(g, SimpleParams());
  const std::vector<NodeId> targets = {1, 2, 3};
  const DeliveryTiming t = rt.deliver_unicast(0.0, 0, targets);

  EXPECT_EQ(t.queue_wait_ms, 0.0);
  EXPECT_DOUBLE_EQ(t.service_ms, 1.0 + 3 * 0.5);
  ASSERT_EQ(t.latencies_ms.size(), 3u);
  // i-th message leaves at 1.0 + (i+1)*0.5, propagates 3*2.0 over one hop
  // (+0.25 processing).
  for (int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(t.latencies_ms[static_cast<std::size_t>(i)],
                     1.0 + 0.5 * (i + 1) + 6.0 + 0.25);
  // Later targets wait longer: the serialization effect.
  EXPECT_LT(t.latencies_ms[0], t.latencies_ms[2]);
}

TEST(DeliveryRuntime, MulticastSendsOncePerBranch) {
  const Graph g = Star();
  DeliveryRuntime rt(g, SimpleParams());
  const std::vector<NodeId> targets = {1, 2, 3};
  const DeliveryTiming t = rt.deliver_multicast(0.0, 0, targets);
  // Origin emits 3 branch messages; same as unicast here (star topology).
  EXPECT_DOUBLE_EQ(t.service_ms, 1.0 + 3 * 0.5);
  ASSERT_EQ(t.latencies_ms.size(), 3u);
}

TEST(DeliveryRuntime, MulticastCutsBrokerServiceOnSharedPaths) {
  // Line 0-1-2-3: unicast to {1,2,3} serializes three messages at the
  // publisher; multicast emits a single branch message.  (Per-target
  // *propagation* ties on a pure line — store-and-forward relays pay the
  // same per-hop serialization — so the win is broker service time, which
  // is what saturates throughput.)
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  DeliveryRuntime rt(g, SimpleParams());
  const std::vector<NodeId> targets = {1, 2, 3};
  const DeliveryTiming uni = rt.deliver_unicast(0.0, 0, targets);
  rt.reset();
  const DeliveryTiming multi = rt.deliver_multicast(0.0, 0, targets);

  EXPECT_LT(multi.service_ms, uni.service_ms);  // 1 branch vs 3 messages
  EXPECT_DOUBLE_EQ(multi.service_ms, 1.0 + 0.5);
}

TEST(DeliveryRuntime, MulticastSustainsHigherEventRates) {
  // Same publisher, back-to-back events to 20 subscribers behind one
  // shared path: unicast's queue grows without bound at a rate multicast
  // absorbs easily — the §4.6 throughput claim.
  Graph g(22);
  g.add_edge(0, 1, 1.0);
  for (NodeId leaf = 2; leaf < 22; ++leaf) g.add_edge(1, leaf, 1.0);
  std::vector<NodeId> targets;
  for (NodeId leaf = 2; leaf < 22; ++leaf) targets.push_back(leaf);

  DeliveryRuntime rt(g, SimpleParams());
  // Unicast service = 1.0 + 20·0.5 = 11 ms; arrivals every 2 ms overload it.
  double uni_wait = 0.0, multi_wait = 0.0;
  for (int i = 0; i < 50; ++i)
    uni_wait = rt.deliver_unicast(2.0 * i, 0, targets).queue_wait_ms;
  rt.reset();
  // Multicast service = 1.0 + 1·0.5 = 1.5 ms; the same rate is light load.
  for (int i = 0; i < 50; ++i)
    multi_wait = rt.deliver_multicast(2.0 * i, 0, targets).queue_wait_ms;
  EXPECT_GT(uni_wait, 100.0);  // queue blew up
  EXPECT_EQ(multi_wait, 0.0);  // keeps up
}

TEST(DeliveryRuntime, QueueingDelaysBackToBackEvents) {
  const Graph g = Star();
  DeliveryRuntime rt(g, SimpleParams());
  const std::vector<NodeId> targets = {1};
  const DeliveryTiming first = rt.deliver_unicast(0.0, 0, targets);
  EXPECT_EQ(first.queue_wait_ms, 0.0);
  // Second event arrives while the broker is still serving the first.
  const DeliveryTiming second = rt.deliver_unicast(0.1, 0, targets);
  EXPECT_NEAR(second.queue_wait_ms, first.service_ms - 0.1, 1e-12);
  // An event at a different broker is not delayed.
  const DeliveryTiming other = rt.deliver_unicast(0.1, 2, targets);
  EXPECT_EQ(other.queue_wait_ms, 0.0);
  // After reset, no residual queueing.
  rt.reset();
  EXPECT_EQ(rt.deliver_unicast(0.0, 0, targets).queue_wait_ms, 0.0);
}

TEST(DeliveryRuntime, EmptyTargetListsStillPayMatching) {
  const Graph g = Star();
  DeliveryRuntime rt(g, SimpleParams());
  const DeliveryTiming t = rt.deliver_unicast(0.0, 0, {});
  EXPECT_DOUBLE_EQ(t.service_ms, 1.0);
  EXPECT_TRUE(t.latencies_ms.empty());
  const DeliveryTiming m = rt.deliver_multicast(0.0, 0, {});
  EXPECT_DOUBLE_EQ(m.service_ms, 1.0);
}

TEST(DeliveryRuntime, RejectsUnreachableTargets) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  DeliveryRuntime rt(g, SimpleParams());
  EXPECT_THROW(rt.deliver_unicast(0.0, 0, std::vector<NodeId>{2}),
               std::invalid_argument);
  EXPECT_THROW(rt.deliver_multicast(0.0, 0, std::vector<NodeId>{2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pubsub
