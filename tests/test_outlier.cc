#include "core/outlier.h"

#include <gtest/gtest.h>

namespace pubsub {
namespace {

struct Fixture {
  Fixture() {
    // Popularities: 4.0, 2.0, 1.0, 0.5 (descending, as Grid provides).
    for (int bits : {4, 4, 2, 1}) {
      BitVector v(8);
      for (int i = 0; i < bits; ++i) v.set(static_cast<std::size_t>(i));
      storage.push_back(std::move(v));
    }
    const double probs[] = {1.0, 0.5, 0.5, 0.5};
    for (std::size_t i = 0; i < storage.size(); ++i)
      cells.push_back(ClusterCell{&storage[i], probs[i]});
  }
  std::vector<BitVector> storage;
  std::vector<ClusterCell> cells;
};

TEST(FilterOutliersTest, NoOpByDefault) {
  Fixture f;
  EXPECT_EQ(FilterOutliers(f.cells, {}).size(), 4u);
}

TEST(FilterOutliersTest, PopularityFloorCutsTail) {
  Fixture f;
  OutlierFilterOptions opt;
  opt.min_popularity = 0.9;
  const auto kept = FilterOutliers(f.cells, opt);
  ASSERT_EQ(kept.size(), 3u);
  for (const ClusterCell& c : kept) EXPECT_GE(c.popularity(), 0.9);
}

TEST(FilterOutliersTest, MassFractionKeepsHead) {
  Fixture f;
  // Total popularity = 7.5; 60% = 4.5 → the first cell (4.0) is not enough,
  // the second (cumulative 6.0) crosses the target.
  OutlierFilterOptions opt;
  opt.popularity_mass_fraction = 0.6;
  const auto kept = FilterOutliers(f.cells, opt);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(FilterOutliersTest, CombinedFiltersIntersect) {
  Fixture f;
  OutlierFilterOptions opt;
  opt.popularity_mass_fraction = 0.99;
  opt.min_popularity = 1.5;
  const auto kept = FilterOutliers(f.cells, opt);
  EXPECT_EQ(kept.size(), 2u);  // floor bites first
}

TEST(FilterOutliersTest, EmptyInput) {
  EXPECT_TRUE(FilterOutliers({}, {}).empty());
}

}  // namespace
}  // namespace pubsub
