// Determinism suite: the parallel execution layer guarantees that every
// clustering and matching result is byte-identical for any --threads value
// (util/thread_pool.h).  This suite runs the full pipeline — grid build,
// K-Means (both variants), exact and approximate pairwise, and
// GridMatcher/NoLossMatcher decisions — at 1, 2 and 8 threads under one
// seed and requires identical output, including exact double equality on
// every accumulated cost.  It is also the workload the ThreadSanitizer
// preset runs (cmake --preset tsan): any cross-lane data race in the
// parallel regions fires there.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/grid.h"
#include "core/kmeans.h"
#include "core/matching.h"
#include "core/noloss.h"
#include "core/pairwise.h"
#include "sim/delivery.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/thread_pool.h"

namespace pubsub {
namespace {

constexpr std::uint64_t kSeed = 41;
constexpr std::size_t kEvents = 120;
constexpr std::size_t kMaxCells = 220;
constexpr std::size_t kGroups = 24;

// Everything one pipeline run produces, in comparable form.
struct RunOutput {
  std::vector<std::string> hyper_members;  // bit-strings, popularity order
  std::vector<double> hyper_probs;
  std::vector<Assignment> assignments;     // one per algorithm
  std::vector<int> decision_groups;        // GridMatcher per event
  std::vector<std::vector<SubscriberId>> decision_members;
  std::vector<std::vector<SubscriberId>> decision_unicasts;
  std::vector<int> noloss_groups;          // NoLossMatcher per event
  ClusteredCosts grid_costs;
  ClusteredCosts noloss_costs;

  bool operator==(const RunOutput& o) const {
    return hyper_members == o.hyper_members && hyper_probs == o.hyper_probs &&
           assignments == o.assignments &&
           decision_groups == o.decision_groups &&
           decision_members == o.decision_members &&
           decision_unicasts == o.decision_unicasts &&
           noloss_groups == o.noloss_groups &&
           grid_costs.network == o.grid_costs.network &&
           grid_costs.applevel == o.grid_costs.applevel &&
           grid_costs.wasted_deliveries == o.grid_costs.wasted_deliveries &&
           noloss_costs.network == o.noloss_costs.network &&
           noloss_costs.applevel == o.noloss_costs.applevel &&
           noloss_costs.wasted_deliveries == o.noloss_costs.wasted_deliveries;
  }
};

RunOutput RunPipeline(int threads) {
  ThreadPool::global().set_num_threads(threads);
  RunOutput out;

  Scenario s = MakeStockScenario(400, PublicationHotSpots::kOne, kSeed);
  DeliverySimulator sim(s.net.graph, s.workload);
  const Grid grid(s.workload, *s.pub);
  for (const HyperCell& hc : grid.hyper_cells()) {
    out.hyper_members.push_back(hc.members.to_string());
    out.hyper_probs.push_back(hc.prob);
  }

  Rng event_rng(kSeed + 1);
  const std::vector<EventSample> events =
      SampleEvents(sim, *s.pub, kEvents, event_rng);

  const std::vector<ClusterCell> cells = grid.top_cells(kMaxCells);
  for (const GridAlgorithm& algo : StandardGridAlgorithms()) {
    Rng rng(kSeed + 2);
    out.assignments.push_back(algo.run(cells, kGroups, rng));
  }

  // MatchDecisions for the Forgy assignment (assignments[1] is "forgy" in
  // the standard lineup; use by-name lookup to stay robust).
  Rng rng(kSeed + 2);
  const Assignment forgy = GridAlgorithmByName("forgy").run(cells, kGroups, rng);
  const GridMatcher matcher(grid, forgy, static_cast<int>(kGroups));
  for (const EventSample& e : events) {
    const MatchDecision d = matcher.match(e.pub.point, e.interested);
    out.decision_groups.push_back(d.group_id);
    out.decision_members.emplace_back(d.group_members.begin(),
                                      d.group_members.end());
    out.decision_unicasts.emplace_back(d.unicast_targets.begin(),
                                       d.unicast_targets.end());
  }
  out.grid_costs = EvaluateMatcher(sim, events, MatcherFn(matcher));

  NoLossOptions nopt;
  nopt.max_rectangles = 600;
  nopt.iterations = 2;
  nopt.intersect_top = 48;
  const NoLossResult noloss = NoLossCluster(s.workload, *s.pub, nopt);
  const NoLossMatcher nl_matcher(noloss, kGroups);
  for (const EventSample& e : events)
    out.noloss_groups.push_back(nl_matcher.match(e.pub.point, e.interested).group_id);
  out.noloss_costs = EvaluateMatcher(sim, events, MatcherFn(nl_matcher));

  ThreadPool::global().set_num_threads(1);
  return out;
}

TEST(Determinism, ByteIdenticalAcrossThreadCounts) {
  const RunOutput ref = RunPipeline(1);
  ASSERT_FALSE(ref.hyper_members.empty());
  ASSERT_EQ(ref.assignments.size(), StandardGridAlgorithms().size());
  ASSERT_EQ(ref.decision_groups.size(), kEvents);

  for (const int threads : {2, 8}) {
    const RunOutput got = RunPipeline(threads);
    // Pinpoint mismatches field by field before the blanket check.
    EXPECT_EQ(got.hyper_members, ref.hyper_members) << "threads=" << threads;
    EXPECT_EQ(got.hyper_probs, ref.hyper_probs) << "threads=" << threads;
    for (std::size_t a = 0; a < ref.assignments.size(); ++a)
      EXPECT_EQ(got.assignments[a], ref.assignments[a])
          << "algorithm #" << a << " threads=" << threads;
    EXPECT_EQ(got.decision_groups, ref.decision_groups) << "threads=" << threads;
    EXPECT_EQ(got.decision_members, ref.decision_members) << "threads=" << threads;
    EXPECT_EQ(got.decision_unicasts, ref.decision_unicasts) << "threads=" << threads;
    EXPECT_EQ(got.noloss_groups, ref.noloss_groups) << "threads=" << threads;
    EXPECT_EQ(got.grid_costs.network, ref.grid_costs.network) << "threads=" << threads;
    EXPECT_EQ(got.noloss_costs.network, ref.noloss_costs.network)
        << "threads=" << threads;
    EXPECT_TRUE(got == ref) << "threads=" << threads;
  }
}

// The k-means warm-start (churn) path must also be thread-count-invariant.
TEST(Determinism, WarmStartForgyAcrossThreadCounts) {
  Scenario s = MakeStockScenario(300, PublicationHotSpots::kFour, kSeed + 7);
  const Grid grid(s.workload, *s.pub);
  const std::vector<ClusterCell> cells = grid.top_cells(150);

  KMeansOptions opt;
  opt.variant = KMeansVariant::kForgy;
  const Assignment seed_assignment = KMeansCluster(cells, kGroups, opt).assignment;

  KMeansOptions warm = opt;
  warm.warm_start = &seed_assignment;
  ThreadPool::global().set_num_threads(1);
  const KMeansResult ref = KMeansCluster(cells, kGroups, warm);
  for (const int threads : {2, 8}) {
    ThreadPool::global().set_num_threads(threads);
    const KMeansResult got = KMeansCluster(cells, kGroups, warm);
    EXPECT_EQ(got.assignment, ref.assignment) << "threads=" << threads;
    EXPECT_EQ(got.iterations, ref.iterations) << "threads=" << threads;
  }
  ThreadPool::global().set_num_threads(1);
}

}  // namespace
}  // namespace pubsub
