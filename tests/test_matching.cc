#include "core/matching.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/kmeans.h"
#include "core/noloss.h"
#include "index/spatial_index.h"
#include "workload/publication_model.h"

namespace pubsub {
namespace {

Workload TwoClusterWorkload() {
  // 1-D space: subscribers 0,1 care about the low half, 2,3 about the high
  // half; subscriber 4 spans everything.
  Workload wl;
  wl.space = EventSpace({{"x", 20}});
  auto add = [&wl](double lo, double hi) {
    Subscriber s;
    s.node = static_cast<NodeId>(wl.subscribers.size());
    s.interest = Rect({Interval(lo, hi)});
    wl.subscribers.push_back(std::move(s));
  };
  add(-1, 8);
  add(-1, 9);
  add(10, 19);
  add(11, 19);
  add(-1, 19);
  return wl;
}

std::unique_ptr<PublicationModel> UniformPub(const Workload& wl) {
  std::vector<Marginal1D> m;
  for (std::size_t d = 0; d < wl.space.dims(); ++d)
    m.push_back(Marginal1D::UniformInt(wl.space.dim(d).domain_size));
  return std::make_unique<ProductPublicationModel>(wl.space, std::move(m),
                                                   std::vector<NodeId>{0});
}

std::vector<SubscriberId> Interested(const Workload& wl, const Point& p) {
  std::vector<SubscriberId> out;
  for (std::size_t i = 0; i < wl.subscribers.size(); ++i)
    if (wl.subscribers[i].interest.contains(p)) out.push_back(static_cast<int>(i));
  return out;
}

// MatchDecision's spans have no operator==; materialize for EXPECT_EQ.
std::vector<SubscriberId> ToVec(std::span<const SubscriberId> s) {
  return {s.begin(), s.end()};
}

class GridMatcherTest : public ::testing::Test {
 protected:
  GridMatcherTest()
      : wl_(TwoClusterWorkload()), pub_(UniformPub(wl_)), grid_(wl_, *pub_) {}

  Workload wl_;
  std::unique_ptr<PublicationModel> pub_;
  Grid grid_;
};

TEST_F(GridMatcherTest, GroupAlwaysSupersetOfInterested) {
  const auto cells = grid_.top_cells(0);
  const Assignment assignment = KMeansCluster(cells, 2, {}).assignment;
  const GridMatcher matcher(grid_, assignment, 2);
  for (int x = 0; x < 20; ++x) {
    const Point p{static_cast<double>(x)};
    const auto interested = Interested(wl_, p);
    const MatchDecision d = matcher.match(p, interested);
    if (d.group_id >= 0) {
      for (const SubscriberId s : interested)
        EXPECT_NE(std::find(d.group_members.begin(), d.group_members.end(), s),
                  d.group_members.end())
            << "x=" << x << " sub=" << s;
      EXPECT_TRUE(d.unicast_targets.empty());
    } else {
      EXPECT_EQ(ToVec(d.unicast_targets), interested);
    }
  }
}

TEST_F(GridMatcherTest, UnfedCellsFallBackToUnicast) {
  // Cluster only the single most popular hyper-cell; events in other cells
  // must be unicast.
  const auto cells = grid_.top_cells(1);
  const Assignment assignment = {0};
  const GridMatcher matcher(grid_, assignment, 1);
  int unicast = 0, multicast = 0;
  for (int x = 0; x < 20; ++x) {
    const Point p{static_cast<double>(x)};
    const MatchDecision d = matcher.match(p, Interested(wl_, p));
    (d.group_id >= 0 ? multicast : unicast)++;
  }
  EXPECT_GT(unicast, 0);
  EXPECT_GT(multicast, 0);
}

TEST_F(GridMatcherTest, ThresholdForcesUnicastWhenInterestSparse) {
  const auto cells = grid_.top_cells(0);
  const Assignment assignment = KMeansCluster(cells, 1, {}).assignment;
  // One big group of all 5 subscribers; a threshold of 0.9 can only be met
  // when ≥ 4.5 of them are interested — never true at the edges.
  const GridMatcher all_in(grid_, assignment, 1, 0.0);
  const GridMatcher strict(grid_, assignment, 1, 0.9);
  const Point p{0.0};
  const auto interested = Interested(wl_, p);  // subs 0, 1, 4
  EXPECT_GE(all_in.match(p, interested).group_id, 0);
  const MatchDecision d = strict.match(p, interested);
  EXPECT_EQ(d.group_id, -1);
  EXPECT_EQ(ToVec(d.unicast_targets), interested);
}

TEST_F(GridMatcherTest, EventOutsideDomainUnicasts) {
  const auto cells = grid_.top_cells(0);
  const GridMatcher matcher(grid_, KMeansCluster(cells, 2, {}).assignment, 2);
  const Point p{25.0};
  const MatchDecision d = matcher.match(p, {});
  EXPECT_EQ(d.group_id, -1);
  EXPECT_TRUE(d.unicast_targets.empty());
}

TEST_F(GridMatcherTest, RejectsBadAssignments) {
  const auto cells = grid_.top_cells(0);
  Assignment too_big(grid_.hyper_cells().size() + 5, 0);
  EXPECT_THROW(GridMatcher(grid_, too_big, 1), std::invalid_argument);
  Assignment bad_group(cells.size(), 7);
  EXPECT_THROW(GridMatcher(grid_, bad_group, 2), std::invalid_argument);
}

TEST(NoLossMatcherTest, ZeroWasteOnEveryMatchedEvent) {
  const Workload wl = TwoClusterWorkload();
  const auto pub = UniformPub(wl);
  const NoLossResult result = NoLossCluster(wl, *pub);
  const NoLossMatcher matcher(result, 4);

  for (int x = 0; x < 20; ++x) {
    const Point p{static_cast<double>(x)};
    const auto interested = Interested(wl, p);
    const MatchDecision d = matcher.match(p, interested);
    if (d.group_id < 0) {
      EXPECT_EQ(ToVec(d.unicast_targets), interested);
      continue;
    }
    // No-loss property: every group member is interested.
    for (const SubscriberId m : d.group_members)
      EXPECT_NE(std::find(interested.begin(), interested.end(), m), interested.end())
          << "x=" << x;
    // Coverage: group ∪ unicast = interested exactly.
    std::vector<SubscriberId> covered(d.group_members.begin(), d.group_members.end());
    covered.insert(covered.end(), d.unicast_targets.begin(), d.unicast_targets.end());
    std::sort(covered.begin(), covered.end());
    EXPECT_EQ(covered, interested);
  }
}

TEST(NoLossMatcherTest, WeightModePicksHeaviestContainingArea) {
  const Workload wl = TwoClusterWorkload();
  const auto pub = UniformPub(wl);
  const NoLossResult result = NoLossCluster(wl, *pub);
  NoLossMatcherOptions paper_literal;
  paper_literal.selection = NoLossMatcherOptions::Selection::kWeight;
  paper_literal.pick = NoLossMatcherOptions::Pick::kWeight;
  const NoLossMatcher matcher(result, result.groups.size(), paper_literal);

  for (int x = 0; x < 20; ++x) {
    const Point p{static_cast<double>(x)};
    const MatchDecision d = matcher.match(p, Interested(wl, p));
    if (d.group_id < 0) continue;
    const double picked = matcher.group(d.group_id).weight;
    for (int g = 0; g < matcher.num_groups(); ++g)
      if (matcher.group(g).rect.contains(p)) EXPECT_GE(picked, matcher.group(g).weight);
  }
}

TEST(NoLossMatcherTest, DefaultModePicksDensestContainingArea) {
  const Workload wl = TwoClusterWorkload();
  const auto pub = UniformPub(wl);
  const NoLossResult result = NoLossCluster(wl, *pub);
  const NoLossMatcher matcher(result, result.groups.size());

  for (int x = 0; x < 20; ++x) {
    const Point p{static_cast<double>(x)};
    const MatchDecision d = matcher.match(p, Interested(wl, p));
    if (d.group_id < 0) continue;
    const std::size_t picked = matcher.group(d.group_id).subscribers.count();
    for (int g = 0; g < matcher.num_groups(); ++g)
      if (matcher.group(g).rect.contains(p))
        EXPECT_GE(picked, matcher.group(g).subscribers.count());
  }
}

TEST(NoLossMatcherTest, SavingsSelectionPrefersDenseAreas) {
  const Workload wl = TwoClusterWorkload();
  const auto pub = UniformPub(wl);
  const NoLossResult result = NoLossCluster(wl, *pub);
  const NoLossMatcher matcher(result, 2);
  // Selected groups must be the two highest-savings areas of the pool.
  double worst_selected = 1e18;
  for (int g = 0; g < matcher.num_groups(); ++g)
    worst_selected = std::min(worst_selected, matcher.group(g).savings());
  int better_than_worst = 0;
  for (const NoLossGroup& g : result.groups)
    if (g.savings() > worst_selected + 1e-12) ++better_than_worst;
  EXPECT_LT(better_than_worst, matcher.num_groups());
}

TEST(NoLossMatcherTest, WeightSelectionSortsUnsortedPool) {
  // Regression: kWeight selection used to assume the candidate pool was
  // already weight-sorted and silently took the first K entries, which is
  // wrong for any caller that hands the matcher a hand-built or re-ranked
  // pool.  Build a deliberately unsorted pool and require the true top-K.
  auto make_group = [](double lo, double hi, double mass, double weight) {
    NoLossGroup g;
    g.rect = Rect({Interval(lo, hi)});
    g.subscribers = BitVector(3);
    g.subscribers.set(0);
    g.mass = mass;
    g.weight = weight;
    return g;
  };
  NoLossResult pool;
  pool.groups.push_back(make_group(-1, 5, 0.3, 2.0));
  pool.groups.push_back(make_group(5, 12, 0.9, 9.0));
  pool.groups.push_back(make_group(12, 19, 0.5, 5.0));

  NoLossMatcherOptions by_weight;
  by_weight.selection = NoLossMatcherOptions::Selection::kWeight;
  const NoLossMatcher matcher(pool, 2, by_weight);
  ASSERT_EQ(matcher.num_groups(), 2);
  std::vector<double> weights;
  for (int g = 0; g < matcher.num_groups(); ++g)
    weights.push_back(matcher.group(g).weight);
  std::sort(weights.begin(), weights.end());
  EXPECT_EQ(weights, (std::vector<double>{5.0, 9.0}));

  // Savings selection on the same unsorted pool: savings = weight − mass
  // ranks 8.1 > 4.5 > 1.7, so the same two areas must win there too.
  const NoLossMatcher by_savings(pool, 2);
  double worst = 1e18;
  for (int g = 0; g < by_savings.num_groups(); ++g)
    worst = std::min(worst, by_savings.group(g).savings());
  EXPECT_GT(worst, 4.0);
}

TEST(NoLossMatcherTest, UsesOnlyTopKGroups) {
  const Workload wl = TwoClusterWorkload();
  const auto pub = UniformPub(wl);
  const NoLossResult result = NoLossCluster(wl, *pub);
  ASSERT_GT(result.groups.size(), 1u);
  const NoLossMatcher matcher(result, 1);
  EXPECT_EQ(matcher.num_groups(), 1);
}

}  // namespace
}  // namespace pubsub
