// Shared helpers for the clustering-algorithm tests: synthetic cell sets
// with known cluster structure.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cluster_types.h"
#include "util/rng.h"

namespace pubsub::testutil {

// Owns the bit-vectors referenced by the ClusterCell views.
struct CellSet {
  std::vector<BitVector> storage;
  std::vector<ClusterCell> cells;
  std::vector<int> truth;  // ground-truth block per cell (when applicable)
};

// `blocks` disjoint subscriber blocks of `block_size >= 3` subscribers;
// `cells_per_block` cells per block.  Every cell covers its whole block
// except possibly one subscriber, and probabilities are nearly equal, so
// within-block expected-waste distances (≤ p_a + p_b ≈ 0.13) are strictly
// below every cross-block distance (≥ (block_size−1)(p_a + p_b)): any
// waste-minimizing K=blocks clustering must separate the blocks exactly.
// The first cell of each block covers the full block at a slightly higher
// probability, so the top-`blocks` popularity seeds are one per block
// (which the K-means seeding step relies on).
inline CellSet SeparableCells(std::size_t blocks, std::size_t block_size,
                              std::size_t cells_per_block, Rng& rng) {
  CellSet out;
  const std::size_t ns = blocks * block_size;
  out.storage.reserve(blocks * cells_per_block);
  std::vector<double> probs;
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t c = 0; c < cells_per_block; ++c) {
      BitVector v(ns);
      for (std::size_t i = 0; i < block_size; ++i) v.set(b * block_size + i);
      if (c > 0 && rng.bernoulli(0.5))
        v.reset(b * block_size + static_cast<std::size_t>(
                                     rng.uniform_int(0, static_cast<std::int64_t>(block_size) - 1)));
      out.storage.push_back(std::move(v));
      out.truth.push_back(static_cast<int>(b));
      probs.push_back(c == 0 ? 0.07 : 0.05 + rng.uniform() * 0.01);
    }
  }
  for (std::size_t i = 0; i < out.storage.size(); ++i)
    out.cells.push_back(ClusterCell{&out.storage[i], probs[i]});
  return out;
}

// Fully random cells (no planted structure).
inline CellSet RandomCells(std::size_t count, std::size_t ns, Rng& rng) {
  CellSet out;
  out.storage.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    BitVector v(ns);
    for (std::size_t i = 0; i < ns; ++i)
      if (rng.bernoulli(0.3)) v.set(i);
    if (v.none()) v.set(c % ns);
    out.storage.push_back(std::move(v));
  }
  for (std::size_t i = 0; i < out.storage.size(); ++i)
    out.cells.push_back(ClusterCell{&out.storage[i], 0.001 + rng.uniform()});
  return out;
}

// True iff the assignment groups cells exactly by ground-truth block.
inline bool MatchesTruth(const std::vector<int>& truth, const Assignment& got) {
  if (truth.size() != got.size()) return false;
  // Bijective label mapping in both directions.
  std::vector<int> t2g, g2t;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto t = static_cast<std::size_t>(truth[i]);
    const auto g = static_cast<std::size_t>(got[i]);
    if (t2g.size() <= t) t2g.resize(t + 1, -1);
    if (g2t.size() <= g) g2t.resize(g + 1, -1);
    if (t2g[t] == -1) t2g[t] = static_cast<int>(g);
    if (g2t[g] == -1) g2t[g] = static_cast<int>(t);
    if (t2g[t] != static_cast<int>(g) || g2t[g] != static_cast<int>(t)) return false;
  }
  return true;
}

// Validates an assignment: every label in [0, K), all K labels used.
inline bool ValidPartition(const Assignment& a, std::size_t K) {
  std::vector<char> used(K, 0);
  for (const int g : a) {
    if (g < 0 || static_cast<std::size_t>(g) >= K) return false;
    used[static_cast<std::size_t>(g)] = 1;
  }
  for (const char u : used)
    if (!u) return false;
  return true;
}

}  // namespace pubsub::testutil
