#include "util/bitvector.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace pubsub {
namespace {

TEST(BitVector, StartsEmpty) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.none());
  EXPECT_FALSE(v.any());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVector, SetResetTest) {
  BitVector v(130);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(129);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(129));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.count(), 4u);
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.count(), 3u);
  v.assign(63, true);
  EXPECT_TRUE(v.test(63));
  v.assign(63, false);
  EXPECT_FALSE(v.test(63));
}

TEST(BitVector, ClearAll) {
  BitVector v(70);
  v.set(5);
  v.set(69);
  v.clear_all();
  EXPECT_TRUE(v.none());
}

TEST(BitVector, LogicalOps) {
  BitVector a(200), b(200);
  a.set(3);
  a.set(100);
  b.set(100);
  b.set(150);

  const BitVector u = a | b;
  EXPECT_TRUE(u.test(3));
  EXPECT_TRUE(u.test(100));
  EXPECT_TRUE(u.test(150));
  EXPECT_EQ(u.count(), 3u);

  const BitVector i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(100));

  const BitVector x = a ^ b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(3));
  EXPECT_TRUE(x.test(150));

  BitVector d = a;
  d.and_not_assign(b);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(3));
}

TEST(BitVector, CountKernelsMatchMaterialized) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng() % 300;
    BitVector a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng() & 1) a.set(i);
      if (rng() & 1) b.set(i);
    }
    BitVector diff = a;
    diff.and_not_assign(b);
    EXPECT_EQ(a.count_and_not(b), diff.count());
    EXPECT_EQ(a.count_and(b), (a & b).count());
    EXPECT_EQ(a.count_or(b), (a | b).count());
    // The fused one-pass kernel must agree with the two single diffs.
    std::size_t a_not_b = 0, b_not_a = 0;
    a.count_diffs(b, &a_not_b, &b_not_a);
    EXPECT_EQ(a_not_b, a.count_and_not(b));
    EXPECT_EQ(b_not_a, b.count_and_not(a));
    EXPECT_EQ(a.intersects(b), (a & b).any());
    EXPECT_EQ(a.is_subset_of(b), a.count_and_not(b) == 0);
  }
}

TEST(BitVector, SubsetSemantics) {
  BitVector a(65), b(65);
  a.set(10);
  b.set(10);
  b.set(64);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  BitVector empty(65);
  EXPECT_TRUE(empty.is_subset_of(a));
}

TEST(BitVector, ForEachSetVisitsInOrder) {
  BitVector v(300);
  const std::set<std::size_t> want = {0, 1, 63, 64, 65, 128, 255, 299};
  for (std::size_t i : want) v.set(i);
  std::vector<std::size_t> got;
  v.for_each_set([&got](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, std::vector<std::size_t>(want.begin(), want.end()));
  EXPECT_EQ(v.set_bits(), got);
}

TEST(BitVector, EqualityAndHash) {
  BitVector a(100), b(100);
  a.set(42);
  b.set(42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(43);
  EXPECT_FALSE(a == b);
  // Different sizes are never equal, even when both are empty.
  EXPECT_FALSE(BitVector(64) == BitVector(65));
}

TEST(BitVector, ToString) {
  BitVector v(5);
  v.set(1);
  v.set(4);
  EXPECT_EQ(v.to_string(), "01001");
}

class BitVectorSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorSizeTest, CountMatchesNaiveAtBoundary) {
  const std::size_t n = GetParam();
  BitVector v(n);
  std::size_t expect = 0;
  for (std::size_t i = 0; i < n; i += 3) {
    v.set(i);
    ++expect;
  }
  EXPECT_EQ(v.count(), expect);
  std::size_t seen = 0;
  v.for_each_set([&](std::size_t i) {
    EXPECT_EQ(i % 3, 0u);
    ++seen;
  });
  EXPECT_EQ(seen, expect);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, BitVectorSizeTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 129, 1000));

}  // namespace
}  // namespace pubsub
