// Tests for the §3 and §5.1 workload generators, interval generation and
// subscriber placement.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "workload/interval_gen.h"
#include "workload/placement.h"
#include "workload/section3.h"
#include "workload/stock_model.h"

namespace pubsub {
namespace {

TransitStubNetwork Net(std::uint64_t seed = 1,
                       TransitStubParams p = PaperNetSection5()) {
  Rng rng(seed);
  return GenerateTransitStub(p, rng);
}

// ------------------------------------------------------------ interval_gen

TEST(IntervalGen, AlwaysInsideDomainAndNonEmpty) {
  const Interval domain(-1, 20);
  ParametricIntervalSpec spec{0.1, 0.2, 0.2, 9, 3, 9, 3, 9, 4, 4, 1};
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const Interval iv = SampleParametricInterval(spec, domain, rng);
    EXPECT_FALSE(iv.empty());
    EXPECT_TRUE(domain.contains(iv)) << iv.to_string();
  }
}

TEST(IntervalGen, WildcardProbabilityRespected) {
  const Interval domain(-1, 20);
  ParametricIntervalSpec spec{0.4, 0.0, 0.0, 9, 1, 9, 1, 9, 2, 4, 1};
  Rng rng(3);
  int wildcards = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (SampleParametricInterval(spec, domain, rng) == domain) ++wildcards;
  // Full-domain results also arise from wide two-ended draws, so the rate
  // is at least q0 (within noise).
  EXPECT_GT(static_cast<double>(wildcards) / n, 0.4 - 0.02);
}

TEST(IntervalGen, OneEndedDrawsClipToDomain) {
  const Interval domain(-1, 20);
  ParametricIntervalSpec spec{0.0, 1.0, 0.0, 9, 1, 0, 1, 0, 1, 1, 1};
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const Interval iv = SampleParametricInterval(spec, domain, rng);
    EXPECT_EQ(iv.hi(), 20.0);  // left-ended (n, +inf) clips to (n, 20]
    EXPECT_GE(iv.lo(), -1.0);
  }
}

TEST(IntervalGen, CenteredIntervalSnapsOutliersToDomainEdge) {
  const Interval domain(-1, 20);
  const Interval inside = CenteredInterval(10, 4, domain);
  EXPECT_EQ(inside, Interval(8, 12));
  const Interval low = CenteredInterval(-30, 2, domain);
  EXPECT_FALSE(low.empty());
  EXPECT_TRUE(domain.contains(low));
  const Interval high = CenteredInterval(55, 2, domain);
  EXPECT_FALSE(high.empty());
  EXPECT_TRUE(domain.contains(high));
}

// --------------------------------------------------------------- placement

TEST(Placement, BlockBreakdownRespected) {
  const TransitStubNetwork net = Net(5);
  Rng rng(6);
  const ZipfPlacement place(net, {0.4, 0.3, 0.3}, 1.0, rng);
  std::vector<int> per_block(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++per_block[net.block_of_node[place.sample(rng)]];
  EXPECT_NEAR(per_block[0] / static_cast<double>(n), 0.4, 0.02);
  EXPECT_NEAR(per_block[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(per_block[2] / static_cast<double>(n), 0.3, 0.02);
}

TEST(Placement, ConcentratesOnFewNodes) {
  const TransitStubNetwork net = Net(7);
  Rng rng(8);
  const ZipfPlacement place(net, {0.4, 0.3, 0.3}, 1.0, rng);
  std::map<NodeId, int> counts;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ++counts[place.sample(rng)];
  // Zipf concentration: the busiest node gets far more than the uniform
  // share (10000 / 600 ≈ 17).
  int max_count = 0;
  for (const auto& [node, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 100);
  // All samples land on hosts.
  for (const auto& [node, c] : counts) EXPECT_NE(net.stub_of_node[node], -1);
}

TEST(Placement, RejectsWrongBlockCount) {
  const TransitStubNetwork net = Net(9);
  Rng rng(10);
  EXPECT_THROW(ZipfPlacement(net, {0.5, 0.5}, 1.0, rng), std::invalid_argument);
}

// ---------------------------------------------------------------- section3

TEST(Section3, AbsoluteRegionalismPinsOwnStub) {
  const TransitStubNetwork net = Net(11, PaperNet100());
  Section3Params params;
  params.regionalism = 1.0;
  Rng rng(12);
  const Workload wl = GenerateSection3Subscriptions(net, 300, params, rng);
  ASSERT_EQ(wl.subscribers.size(), 300u);
  for (const Subscriber& s : wl.subscribers) {
    const int stub = net.stub_of_node[s.node];
    EXPECT_EQ(s.interest[0], Interval::Point(stub));
  }
}

TEST(Section3, NoRegionalismLeavesDimensionUnconstrained) {
  const TransitStubNetwork net = Net(13, PaperNet100());
  Section3Params params;
  params.regionalism = 0.0;
  Rng rng(14);
  const Workload wl = GenerateSection3Subscriptions(net, 300, params, rng);
  for (const Subscriber& s : wl.subscribers)
    EXPECT_EQ(s.interest[0], wl.space.domain_interval(0));
}

TEST(Section3, UniformSpecifyProbabilitiesDecay) {
  const TransitStubNetwork net = Net(15, PaperNet100());
  Section3Params params;
  params.subscription_tail = Section3Params::Tail::kUniform;
  Rng rng(16);
  const int n = 20000;
  const Workload wl = GenerateSection3Subscriptions(net, n, params, rng);
  std::vector<int> specified(3, 0);
  for (const Subscriber& s : wl.subscribers)
    for (int j = 0; j < 3; ++j)
      if (!(s.interest[static_cast<std::size_t>(j) + 1] ==
            wl.space.domain_interval(static_cast<std::size_t>(j) + 1)))
        ++specified[j];
  EXPECT_NEAR(specified[0] / static_cast<double>(n), 0.98, 0.01);
  EXPECT_NEAR(specified[1] / static_cast<double>(n), 0.98 * 0.78, 0.015);
  EXPECT_NEAR(specified[2] / static_cast<double>(n), 0.98 * 0.78 * 0.78, 0.015);
}

TEST(Section3, SubscriptionRectsMatchSpace) {
  const TransitStubNetwork net = Net(17, PaperNet300());
  Section3Params params;
  params.subscription_tail = Section3Params::Tail::kGaussian;
  Rng rng(18);
  const Workload wl = GenerateSection3Subscriptions(net, 500, params, rng);
  EXPECT_EQ(wl.space.dims(), 4u);
  EXPECT_EQ(wl.space.dim(0).domain_size, net.num_stubs);
  const Rect domain = wl.space.domain_rect();
  for (const Subscriber& s : wl.subscribers) {
    EXPECT_EQ(s.interest.dims(), 4u);
    EXPECT_FALSE(s.interest.empty());
    EXPECT_TRUE(domain.contains(s.interest));
  }
}

TEST(Section3, PublicationsCarryOriginStub) {
  const TransitStubNetwork net = Net(19, PaperNet100());
  Section3Params params;
  const auto model = MakeSection3PublicationModel(net, params);
  Rng rng(20);
  for (int i = 0; i < 500; ++i) {
    const Publication p = model->sample(rng);
    EXPECT_EQ(p.point[0], static_cast<double>(net.stub_of_node[p.origin]));
    EXPECT_TRUE(model->space().domain_rect().contains(p.point));
  }
}

// -------------------------------------------------------------- stock model

TEST(StockModel, BstPinsSingleValueWithGivenProbabilities) {
  const TransitStubNetwork net = Net(21);
  StockModelParams params;
  Rng rng(22);
  const int n = 30000;
  const Workload wl = GenerateStockSubscriptions(net, n, params, rng);
  std::vector<int> counts(3, 0);
  for (const Subscriber& s : wl.subscribers) {
    const Interval& bst = s.interest[0];
    EXPECT_EQ(bst.length(), 1.0);
    ++counts[static_cast<int>(bst.hi())];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.4, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.4, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.2, 0.02);
}

TEST(StockModel, NameCentersFollowBlockMeans) {
  const TransitStubNetwork net = Net(23);
  StockModelParams params;
  Rng rng(24);
  const Workload wl = GenerateStockSubscriptions(net, 30000, params, rng);
  std::vector<double> sum(3, 0);
  std::vector<int> cnt(3, 0);
  for (const Subscriber& s : wl.subscribers) {
    const int block = net.block_of_node[s.node];
    const Interval& name = s.interest[1];
    sum[block] += 0.5 * (name.lo() + name.hi());
    ++cnt[block];
  }
  // Clipping to (−1, 20] biases extreme blocks inwards; allow ~1 unit.
  EXPECT_NEAR(sum[0] / cnt[0], 3.0, 1.2);
  EXPECT_NEAR(sum[1] / cnt[1], 10.0, 1.2);
  EXPECT_NEAR(sum[2] / cnt[2], 17.0, 1.2);
}

TEST(StockModel, AllRectsInsideDomain) {
  const TransitStubNetwork net = Net(25);
  Rng rng(26);
  const Workload wl = GenerateStockSubscriptions(net, 2000, {}, rng);
  const Rect domain = wl.space.domain_rect();
  for (const Subscriber& s : wl.subscribers) {
    EXPECT_FALSE(s.interest.empty());
    EXPECT_TRUE(domain.contains(s.interest));
  }
}

TEST(StockModel, PublicationScenariosShiftHotSpots) {
  const TransitStubNetwork net = Net(27);
  const StockModelParams params;
  const auto one = MakeStockPublicationModel(net, PublicationHotSpots::kOne, params);
  const auto nine = MakeStockPublicationModel(net, PublicationHotSpots::kNine, params);

  // One-mode: name mass is unimodal around 10; nine-mode: mass near 4, 11
  // and 18 — so the mass in (1,6] should be clearly higher for the mixture.
  Rect low_name = one->space().domain_rect();
  low_name[1] = Interval(1, 6);
  EXPECT_GT(nine->rect_mass(low_name), one->rect_mass(low_name));

  Rng rng(28);
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(one->space().domain_rect().contains(one->sample(rng).point));
    EXPECT_TRUE(nine->space().domain_rect().contains(nine->sample(rng).point));
  }
}

TEST(StockModel, RectMassIsAProductMeasure) {
  const TransitStubNetwork net = Net(29);
  const auto model = MakeStockPublicationModel(net, PublicationHotSpots::kOne, {});
  const Rect domain = model->space().domain_rect();
  EXPECT_NEAR(model->rect_mass(domain), 1.0, 1e-9);

  // Mass is monotone under shrinking.
  Rect smaller = domain;
  smaller[2] = Interval(5, 12);
  EXPECT_LT(model->rect_mass(smaller), 1.0);
  EXPECT_GT(model->rect_mass(smaller), 0.0);

  Rect empty = domain;
  empty[3] = Interval(4, 4);
  EXPECT_EQ(model->rect_mass(empty), 0.0);
}

TEST(StockModel, DeterministicUnderSeed) {
  const TransitStubNetwork net = Net(30);
  Rng r1(31), r2(31);
  const Workload a = GenerateStockSubscriptions(net, 200, {}, r1);
  const Workload b = GenerateStockSubscriptions(net, 200, {}, r2);
  ASSERT_EQ(a.subscribers.size(), b.subscribers.size());
  for (std::size_t i = 0; i < a.subscribers.size(); ++i) {
    EXPECT_EQ(a.subscribers[i].node, b.subscribers[i].node);
    EXPECT_EQ(a.subscribers[i].interest, b.subscribers[i].interest);
  }
}

}  // namespace
}  // namespace pubsub
