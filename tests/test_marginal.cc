#include <gtest/gtest.h>

#include "workload/marginal.h"

namespace pubsub {
namespace {

TEST(Marginal, UniformMassesAndSampling) {
  const Marginal1D m = Marginal1D::UniformInt(10);
  EXPECT_EQ(m.domain_size(), 10);
  for (int v = 0; v < 10; ++v) EXPECT_NEAR(m.pmf(v), 0.1, 1e-12);
  EXPECT_NEAR(m.interval_mass(Interval(-1, 9)), 1.0, 1e-12);
  EXPECT_NEAR(m.interval_mass(Interval(2, 5)), 0.3, 1e-12);
  EXPECT_NEAR(m.interval_mass(Interval::Point(4)), 0.1, 1e-12);
  EXPECT_EQ(m.interval_mass(Interval(9, 100)), 0.0);
  EXPECT_EQ(m.interval_mass(Interval(-5, -2)), 0.0);
}

TEST(Marginal, GaussianFoldsTailsIntoBoundaries) {
  // Mean far below the domain: all clamped mass lands on value 0.
  const Marginal1D low = Marginal1D::Gaussian(GaussianMixture1D::Single(-50, 1), 5);
  EXPECT_NEAR(low.pmf(0), 1.0, 1e-9);
  const Marginal1D high = Marginal1D::Gaussian(GaussianMixture1D::Single(50, 1), 5);
  EXPECT_NEAR(high.pmf(4), 1.0, 1e-9);
}

TEST(Marginal, GaussianPmfSumsToOne) {
  const Marginal1D m = Marginal1D::Gaussian(GaussianMixture1D::Single(9, 3), 21);
  double total = 0;
  for (int v = 0; v < 21; ++v) total += m.pmf(v);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The mode carries the most mass.
  for (int v = 0; v < 21; ++v) EXPECT_LE(m.pmf(v), m.pmf(9));
}

TEST(Marginal, IntervalMassMatchesPmfSums) {
  const Marginal1D m = Marginal1D::Gaussian(GaussianMixture1D::Single(5, 2), 11);
  double sum = 0;
  for (int v = 3; v <= 7; ++v) sum += m.pmf(v);
  EXPECT_NEAR(m.interval_mass(Interval(2, 7)), sum, 1e-12);
  // Unbounded query intervals clip to the domain.
  EXPECT_NEAR(m.interval_mass(Interval::All()), 1.0, 1e-12);
  EXPECT_NEAR(m.interval_mass(Interval::AtMost(4)),
              m.pmf(0) + m.pmf(1) + m.pmf(2) + m.pmf(3) + m.pmf(4), 1e-12);
}

TEST(Marginal, SamplingMatchesInterval) {
  const Marginal1D m = Marginal1D::Gaussian(GaussianMixture1D::Single(4, 1.5), 9);
  Rng rng(31);
  std::vector<int> counts(9, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const int v = m.sample(rng);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 9);
    ++counts[v];
  }
  for (int v = 0; v < 9; ++v)
    EXPECT_NEAR(static_cast<double>(counts[v]) / n, m.pmf(v), 0.01) << "v=" << v;
}

TEST(Marginal, CategoricalNormalizes) {
  const Marginal1D m = Marginal1D::Categorical({2.0, 0.0, 6.0});
  EXPECT_NEAR(m.pmf(0), 0.25, 1e-12);
  EXPECT_EQ(m.pmf(1), 0.0);
  EXPECT_NEAR(m.pmf(2), 0.75, 1e-12);
}

TEST(Marginal, RejectsInvalid) {
  EXPECT_THROW(Marginal1D::UniformInt(0), std::invalid_argument);
  EXPECT_THROW(Marginal1D::Categorical({}), std::invalid_argument);
  EXPECT_THROW(Marginal1D::Categorical({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Marginal1D::Categorical({0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace pubsub
