#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>

#include "index/slab_index.h"
#include "index/spatial_index.h"

namespace pubsub {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Rect RandRect(std::mt19937_64& rng, int dims, int domain) {
  std::vector<Interval> ivals;
  for (int d = 0; d < dims; ++d) {
    double a = static_cast<double>(rng() % static_cast<unsigned>(domain));
    double b = static_cast<double>(rng() % static_cast<unsigned>(domain));
    if (a > b) std::swap(a, b);
    ivals.emplace_back(a - 1.0, b);
  }
  return Rect(std::move(ivals));
}

Point RandPoint(std::mt19937_64& rng, int dims, int domain) {
  Point p;
  for (int d = 0; d < dims; ++d)
    p.push_back(static_cast<double>(rng() % static_cast<unsigned>(domain)));
  return p;
}

std::vector<int> Sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SlabIndex, EmptyIndexAnswersNothing) {
  const SlabIndex idx({}, 0);
  EXPECT_EQ(idx.size(), 0u);
  std::vector<int> out{99};
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{1.0}, out, tmp);
  EXPECT_TRUE(out.empty());
}

TEST(SlabIndex, HalfOpenBoundarySemantics) {
  // (0, 2] x (0, 2]: the lower edge is excluded, the upper edge included —
  // the repo-wide interval convention (geometry/interval.h).
  const SlabIndex idx({{Rect({Interval(0, 2), Interval(0, 2)}), 7}}, 8);
  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{1.0, 1.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{7});
  idx.stab(Point{0.0, 1.0}, out, tmp);
  EXPECT_TRUE(out.empty()) << "open left edge";
  idx.stab(Point{2.0, 2.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{7});
  idx.stab(Point{2.0 + 1e-9, 2.0}, out, tmp);
  EXPECT_TRUE(out.empty()) << "closed right edge";
}

TEST(SlabIndex, UnboundedIntervalsCoverEdgePieces) {
  // Unlike the R-tree, the slab index accepts unbounded intervals (they map
  // to the open edge pieces of the decomposition).
  const SlabIndex idx(
      {{Rect({Interval(-kInf, 5.0)}), 0}, {Rect({Interval(5.0, kInf)}), 1}},
      2);
  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{-1000.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{0});
  idx.stab(Point{5.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{0});  // hi=5 closed, lo=5 open
  idx.stab(Point{5.5}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{1});
  idx.stab(Point{1000.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{1});
}

TEST(SlabIndex, RejectsIdsOutsideUniverse) {
  EXPECT_THROW(SlabIndex({{Rect({Interval(0, 1)}), 3}}, 3),
               std::invalid_argument);
  EXPECT_THROW(SlabIndex({{Rect({Interval(0, 1)}), -1}}, 3),
               std::invalid_argument);
}

// Property suite: the slab index must agree with the brute-force
// LinearIndex on stabbing queries — including queries placed exactly on
// stored endpoints, where the half-open piece decomposition is most likely
// to be off by one.  Output must arrive in ascending id order (the broker's
// sorted-set convention).
struct SlabParam {
  int seed;
  int entries;
  int dims;
};

class SlabOracleTest : public ::testing::TestWithParam<SlabParam> {};

TEST_P(SlabOracleTest, AgreesWithLinearIndexInAscendingOrder) {
  const SlabParam param = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(param.seed));
  constexpr int kDomain = 12;

  LinearIndex oracle;
  std::vector<std::pair<Rect, int>> items;
  for (int i = 0; i < param.entries; ++i) {
    const Rect r = RandRect(rng, param.dims, kDomain);
    if (r.empty()) continue;
    oracle.insert(r, i);
    items.emplace_back(r, i);
  }
  const SlabIndex idx(items, static_cast<std::size_t>(param.entries));
  EXPECT_EQ(idx.size(), oracle.size());

  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  auto check = [&](const Point& p) {
    idx.stab(p, out, tmp);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end())) << "ascending order";
    EXPECT_EQ(out, Sorted(oracle.stab(p)));
  };
  for (int q = 0; q < 80; ++q) check(RandPoint(rng, param.dims, kDomain));
  // Boundary probes: every coordinate sits exactly on a stored endpoint.
  for (int q = 0; q < 40 && !items.empty(); ++q) {
    Point p;
    for (int d = 0; d < param.dims; ++d) {
      const Rect& r = items[rng() % items.size()].first;
      p.push_back(rng() % 2 == 0 ? r[static_cast<std::size_t>(d)].lo()
                                 : r[static_cast<std::size_t>(d)].hi());
    }
    check(p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlabOracleTest,
    ::testing::Values(SlabParam{1, 10, 1}, SlabParam{2, 100, 2},
                      SlabParam{3, 500, 3}, SlabParam{4, 65, 4},
                      SlabParam{5, 1000, 2}, SlabParam{6, 64, 1}));

}  // namespace
}  // namespace pubsub
