#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>

#include "index/slab_index.h"
#include "index/spatial_index.h"

namespace pubsub {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Rect RandRect(std::mt19937_64& rng, int dims, int domain) {
  std::vector<Interval> ivals;
  for (int d = 0; d < dims; ++d) {
    double a = static_cast<double>(rng() % static_cast<unsigned>(domain));
    double b = static_cast<double>(rng() % static_cast<unsigned>(domain));
    if (a > b) std::swap(a, b);
    ivals.emplace_back(a - 1.0, b);
  }
  return Rect(std::move(ivals));
}

Point RandPoint(std::mt19937_64& rng, int dims, int domain) {
  Point p;
  for (int d = 0; d < dims; ++d)
    p.push_back(static_cast<double>(rng() % static_cast<unsigned>(domain)));
  return p;
}

std::vector<int> Sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SlabIndex, EmptyIndexAnswersNothing) {
  const SlabIndex idx({}, 0);
  EXPECT_EQ(idx.size(), 0u);
  std::vector<int> out{99};
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{1.0}, out, tmp);
  EXPECT_TRUE(out.empty());
}

TEST(SlabIndex, HalfOpenBoundarySemantics) {
  // (0, 2] x (0, 2]: the lower edge is excluded, the upper edge included —
  // the repo-wide interval convention (geometry/interval.h).
  const SlabIndex idx({{Rect({Interval(0, 2), Interval(0, 2)}), 7}}, 8);
  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{1.0, 1.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{7});
  idx.stab(Point{0.0, 1.0}, out, tmp);
  EXPECT_TRUE(out.empty()) << "open left edge";
  idx.stab(Point{2.0, 2.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{7});
  idx.stab(Point{2.0 + 1e-9, 2.0}, out, tmp);
  EXPECT_TRUE(out.empty()) << "closed right edge";
}

TEST(SlabIndex, UnboundedIntervalsCoverEdgePieces) {
  // Unlike the R-tree, the slab index accepts unbounded intervals (they map
  // to the open edge pieces of the decomposition).
  const SlabIndex idx(
      {{Rect({Interval(-kInf, 5.0)}), 0}, {Rect({Interval(5.0, kInf)}), 1}},
      2);
  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{-1000.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{0});
  idx.stab(Point{5.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{0});  // hi=5 closed, lo=5 open
  idx.stab(Point{5.5}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{1});
  idx.stab(Point{1000.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{1});
}

TEST(SlabIndex, RejectsIdsOutsideUniverse) {
  EXPECT_THROW(SlabIndex({{Rect({Interval(0, 1)}), 3}}, 3),
               std::invalid_argument);
  EXPECT_THROW(SlabIndex({{Rect({Interval(0, 1)}), -1}}, 3),
               std::invalid_argument);
}

// Property suite: the slab index must agree with the brute-force
// LinearIndex on stabbing queries — including queries placed exactly on
// stored endpoints, where the half-open piece decomposition is most likely
// to be off by one.  Output must arrive in ascending id order (the broker's
// sorted-set convention).
struct SlabParam {
  int seed;
  int entries;
  int dims;
};

class SlabOracleTest : public ::testing::TestWithParam<SlabParam> {};

TEST_P(SlabOracleTest, AgreesWithLinearIndexInAscendingOrder) {
  const SlabParam param = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(param.seed));
  constexpr int kDomain = 12;

  LinearIndex oracle;
  std::vector<std::pair<Rect, int>> items;
  for (int i = 0; i < param.entries; ++i) {
    const Rect r = RandRect(rng, param.dims, kDomain);
    if (r.empty()) continue;
    oracle.insert(r, i);
    items.emplace_back(r, i);
  }
  const SlabIndex idx(items, static_cast<std::size_t>(param.entries));
  EXPECT_EQ(idx.size(), oracle.size());

  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  auto check = [&](const Point& p) {
    idx.stab(p, out, tmp);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end())) << "ascending order";
    EXPECT_EQ(out, Sorted(oracle.stab(p)));
  };
  for (int q = 0; q < 80; ++q) check(RandPoint(rng, param.dims, kDomain));
  // Boundary probes: every coordinate sits exactly on a stored endpoint.
  for (int q = 0; q < 40 && !items.empty(); ++q) {
    Point p;
    for (int d = 0; d < param.dims; ++d) {
      const Rect& r = items[rng() % items.size()].first;
      p.push_back(rng() % 2 == 0 ? r[static_cast<std::size_t>(d)].lo()
                                 : r[static_cast<std::size_t>(d)].hi());
    }
    check(p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlabOracleTest,
    ::testing::Values(SlabParam{1, 10, 1}, SlabParam{2, 100, 2},
                      SlabParam{3, 500, 3}, SlabParam{4, 65, 4},
                      SlabParam{5, 1000, 2}, SlabParam{6, 64, 1}));

// --- Satellite 1: stabs placed exactly on stored endpoints ---------------
// The piece decomposition is most fragile where lower_bound lands on a
// stored value; every probe is checked against Interval/Rect::contains —
// the ground-truth (lo, hi] semantics — not against another index.

TEST(SlabIndexBoundary, ExactEndpointStabsMatchRectContains) {
  std::mt19937_64 rng(7);
  std::vector<std::pair<Rect, int>> items;
  for (int i = 0; i < 40; ++i) items.emplace_back(RandRect(rng, 2, 6), i);
  const SlabIndex idx(items, items.size());

  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  // Probe the full endpoint cross-product: every stored lo/hi value in
  // each dimension, including corners shared by several rectangles.
  std::vector<std::vector<double>> coords(2);
  for (const auto& [r, id] : items)
    for (std::size_t d = 0; d < 2; ++d) {
      coords[d].push_back(r[d].lo());
      coords[d].push_back(r[d].hi());
    }
  for (const double x : coords[0])
    for (const double y : coords[1]) {
      const Point p{x, y};
      idx.stab(p, out, tmp);
      std::vector<int> expect;
      for (const auto& [r, id] : items)
        if (r.contains(p)) expect.push_back(id);
      EXPECT_EQ(out, expect) << "probe (" << x << ", " << y << ")";
    }
}

TEST(SlabIndexBoundary, SharedEndpointSeparatesTouchingRects) {
  // (0, 1] and (1, 2] touch at 1: a stab at exactly 1.0 must hit only the
  // left rect (its closed hi), never the right (its open lo).
  SlabIndex idx;
  idx.insert(Rect({Interval(0.0, 1.0)}), 0);
  idx.insert(Rect({Interval(1.0, 2.0)}), 1);
  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{1.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{0});
  idx.stab(Point{2.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{1});
  // Erasing the left rect leaves its endpoints dead but must not shift the
  // boundary semantics of the survivor.
  EXPECT_TRUE(idx.erase(0));
  idx.stab(Point{1.0}, out, tmp);
  EXPECT_TRUE(out.empty());
  idx.stab(Point{1.5}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{1});
}

// --- Satellite 2: degenerate inputs --------------------------------------

TEST(SlabIndexDegenerate, EmptyItemSetAndZeroUniverse) {
  const SlabIndex idx({}, 0);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.word_count(), 0u);
  EXPECT_EQ(idx.universe(), 0u);
  EXPECT_EQ(idx.endpoint_count(), 0u);
  EXPECT_EQ(idx.dead_endpoints(), 0u);
  EXPECT_FALSE(idx.contains(0));
  std::vector<int> out{5};
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{0.0}, out, tmp);
  EXPECT_TRUE(out.empty());
}

TEST(SlabIndexDegenerate, AllEmptyRectsBulkLoadIndexNothing) {
  const Rect empty(std::vector<Interval>(2, Interval()));
  const SlabIndex idx({{empty, 0}, {empty, 1}}, 2);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.endpoint_count(), 0u);
  EXPECT_FALSE(idx.contains(0));
  EXPECT_FALSE(idx.contains(1));
  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{0.0, 0.0}, out, tmp);
  EXPECT_TRUE(out.empty());
}

TEST(SlabIndexDegenerate, DuplicateEndpointsAreSharedNotRepeated) {
  // Four rects reusing the same two endpoint values per dimension: the
  // endpoint table holds each distinct value once.
  const Rect r({Interval(1.0, 4.0), Interval(1.0, 4.0)});
  const SlabIndex idx({{r, 0}, {r, 1}, {r, 2}, {r, 3}}, 4);
  EXPECT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx.endpoint_count(), 4u);  // {1, 4} in each of 2 dims
  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{2.0, 2.0}, out, tmp);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SlabIndexDegenerate, IncrementalEdgeCases) {
  SlabIndex idx;
  // Empty rect: a no-op insert, not an error.
  idx.insert(Rect({Interval()}), 3);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_FALSE(idx.contains(3));
  // Erase of an absent id reports false.
  EXPECT_FALSE(idx.erase(3));
  EXPECT_THROW(idx.insert(Rect({Interval(0, 1)}), -1), std::invalid_argument);

  // Update on an absent id degenerates to insert; the universe grows to
  // cover the id.
  idx.update(Rect({Interval(0.0, 2.0)}), 70);
  EXPECT_TRUE(idx.contains(70));
  EXPECT_GE(idx.universe(), 71u);
  EXPECT_EQ(idx.word_count(), 2u);
  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{1.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{70});

  // Update to an empty rect degenerates to erase.
  idx.update(Rect({Interval()}), 70);
  EXPECT_FALSE(idx.contains(70));
  EXPECT_EQ(idx.size(), 0u);

  // An emptied index may adopt a new dimensionality.
  idx.insert(Rect({Interval(0, 1), Interval(0, 1)}), 0);
  EXPECT_TRUE(idx.contains(0));
  EXPECT_THROW(idx.insert(Rect({Interval(0, 1)}), 1), std::invalid_argument);
  EXPECT_THROW(idx.insert(Rect({Interval(5, 9), Interval(0, 1)}), 0),
               std::invalid_argument);  // duplicate id
}

TEST(SlabIndexDegenerate, IncrementalUnboundedIntervals) {
  SlabIndex idx;
  idx.insert(Rect({Interval::All()}), 0);
  EXPECT_EQ(idx.endpoint_count(), 0u);  // no finite endpoints to splice
  idx.insert(Rect({Interval::AtMost(3.0)}), 1);
  idx.insert(Rect({Interval::GreaterThan(3.0)}), 2);
  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{-1e18}, out, tmp);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
  idx.stab(Point{3.0}, out, tmp);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
  idx.stab(Point{1e18}, out, tmp);
  EXPECT_EQ(out, (std::vector<int>{0, 2}));
}

// --- Maintenance telemetry and the rebuild-threshold heuristic -----------

TEST(SlabIndexMaintenance, SpliceAndDeadEndpointCountsTrackChurn) {
  SlabIndex idx;
  idx.insert(Rect({Interval(0.0, 4.0)}), 0);
  EXPECT_EQ(idx.spliced_endpoints(), 2u);
  idx.insert(Rect({Interval(0.0, 4.0)}), 1);  // same endpoints: no splice
  EXPECT_EQ(idx.spliced_endpoints(), 2u);
  idx.insert(Rect({Interval(2.0, 6.0)}), 2);  // 2 and 6 are new
  EXPECT_EQ(idx.spliced_endpoints(), 4u);
  EXPECT_EQ(idx.endpoint_count(), 4u);

  EXPECT_TRUE(idx.erase(2));
  EXPECT_EQ(idx.dead_endpoints(), 2u);  // 2 and 6 now unreferenced
  EXPECT_EQ(idx.endpoint_count(), 4u);  // left in place until rebuild
  // Re-inserting over a dead endpoint resurrects it instead of splicing.
  idx.insert(Rect({Interval(2.0, 4.0)}), 2);
  EXPECT_EQ(idx.dead_endpoints(), 1u);
  EXPECT_EQ(idx.spliced_endpoints(), 4u);
}

TEST(SlabIndexMaintenance, ThresholdRebuildCompactsDeadEndpoints) {
  SlabIndex idx({}, 0, SlabIndex::MaintenanceOptions{2, 0.0});
  for (int i = 0; i < 6; ++i)
    idx.insert(Rect({Interval(10.0 * i, 10.0 * i + 5.0)}), i);
  EXPECT_EQ(idx.endpoint_count(), 12u);
  EXPECT_EQ(idx.rebuilds(), 0u);
  EXPECT_TRUE(idx.erase(1));  // 2 dead: reaches min_dead, exceeds 0.0 * live
  EXPECT_GE(idx.rebuilds(), 1u);
  EXPECT_EQ(idx.dead_endpoints(), 0u);
  EXPECT_EQ(idx.endpoint_count(), 10u);  // compacted

  // Stabs remain exact across the rebuild.
  std::vector<int> out;
  std::vector<std::uint64_t> tmp;
  idx.stab(Point{12.0}, out, tmp);
  EXPECT_TRUE(out.empty()) << "erased rect must stay gone";
  idx.stab(Point{22.0}, out, tmp);
  EXPECT_EQ(out, std::vector<int>{2});
}

// --- Satellite 4: randomized churn fuzz ----------------------------------
// After EVERY operation the incrementally maintained index must stab
// bit-identically to a from-scratch rebuild of the same rectangle set.
// Probes mix random points with endpoint-exact points, and the tight
// MaintenanceOptions force threshold rebuilds mid-run.

struct ChurnParam {
  int seed;
  int dims;
  int ops;
};

class SlabChurnFuzz : public ::testing::TestWithParam<ChurnParam> {};

Rect RandRectMaybeUnbounded(std::mt19937_64& rng, int dims, int domain) {
  Rect r = RandRect(rng, dims, domain);
  if (rng() % 4 != 0) return r;
  std::vector<Interval> ivals;
  for (int d = 0; d < dims; ++d) {
    const Interval& iv = r[static_cast<std::size_t>(d)];
    switch (rng() % 4) {
      case 0: ivals.emplace_back(-kInf, iv.hi()); break;
      case 1: ivals.emplace_back(iv.lo(), kInf); break;
      case 2: ivals.push_back(Interval::All()); break;
      default: ivals.push_back(iv); break;
    }
  }
  return Rect(std::move(ivals));
}

TEST_P(SlabChurnFuzz, IncrementalStabsMatchFromScratchRebuild) {
  const ChurnParam param = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(param.seed));
  // Wide enough that erased rects orphan endpoints (exercising the rebuild
  // threshold), narrow enough that sharing and exact-endpoint collisions
  // still occur.
  constexpr int kDomain = 64;
  constexpr int kIdSpace = 48;

  SlabIndex inc({}, 0, SlabIndex::MaintenanceOptions{2, 0.25});
  std::vector<Rect> live(kIdSpace, Rect(std::vector<Interval>(
                                       static_cast<std::size_t>(param.dims),
                                       Interval())));
  auto live_items = [&] {
    std::vector<std::pair<Rect, int>> items;
    for (int i = 0; i < kIdSpace; ++i)
      if (!live[static_cast<std::size_t>(i)].empty())
        items.emplace_back(live[static_cast<std::size_t>(i)], i);
    return items;
  };

  std::vector<int> got, want;
  std::vector<std::uint64_t> tmp_a, tmp_b;
  for (int op = 0; op < param.ops; ++op) {
    const int id = static_cast<int>(rng() % kIdSpace);
    const bool resident = !live[static_cast<std::size_t>(id)].empty();
    switch (rng() % 3) {
      case 0:  // insert (fresh id only — duplicate insert throws)
        if (!resident) {
          const Rect r = RandRectMaybeUnbounded(rng, param.dims, kDomain);
          inc.insert(r, id);
          if (!r.empty()) live[static_cast<std::size_t>(id)] = r;
        }
        break;
      case 1:
        EXPECT_EQ(inc.erase(id), resident);
        live[static_cast<std::size_t>(id)] =
            Rect(std::vector<Interval>(static_cast<std::size_t>(param.dims),
                                       Interval()));
        break;
      default: {
        const Rect r = RandRectMaybeUnbounded(rng, param.dims, kDomain);
        inc.update(r, id);
        live[static_cast<std::size_t>(id)] =
            r.empty() ? Rect(std::vector<Interval>(
                            static_cast<std::size_t>(param.dims), Interval()))
                      : r;
        break;
      }
    }

    const SlabIndex scratch(live_items(), inc.universe());
    ASSERT_EQ(inc.size(), scratch.size()) << "op " << op;
    for (int q = 0; q < 6; ++q) {
      Point p = RandPoint(rng, param.dims, kDomain);
      if (q % 2 == 1) {  // endpoint-exact probe
        const auto items = live_items();
        if (!items.empty())
          for (int d = 0; d < param.dims; ++d) {
            const Interval& iv =
                items[rng() % items.size()].first[static_cast<std::size_t>(d)];
            const double v = rng() % 2 == 0 ? iv.lo() : iv.hi();
            if (v == -kInf || v == kInf) continue;
            p[static_cast<std::size_t>(d)] = v;
          }
      }
      inc.stab(p, got, tmp_a);
      scratch.stab(p, want, tmp_b);
      ASSERT_EQ(got, want) << "op " << op << " probe " << q;
    }
  }
  // The tight maintenance options must have exercised the rebuild path.
  if (param.ops >= 200) {
    EXPECT_GE(inc.rebuilds(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SlabChurnFuzz,
                         ::testing::Values(ChurnParam{11, 1, 300},
                                           ChurnParam{12, 2, 300},
                                           ChurnParam{13, 3, 200},
                                           ChurnParam{14, 2, 600}));

}  // namespace
}  // namespace pubsub
