// PagedRTree tests: the mem-vs-disk bit-identity oracle (same insert
// history, same queries, *identical* id sequences — unsorted), persistence
// through sync()/Open(), and buffer-pool interaction (tiny pools stay
// correct, counters are deterministic).
#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "index/paged_rtree.h"
#include "index/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

namespace pubsub {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

Rect RandRect(std::mt19937_64& rng, int dims, int domain) {
  std::vector<Interval> ivals;
  for (int d = 0; d < dims; ++d) {
    double a = static_cast<double>(rng() % static_cast<unsigned>(domain));
    double b = static_cast<double>(rng() % static_cast<unsigned>(domain));
    if (a > b) std::swap(a, b);
    ivals.emplace_back(a - 1.0, b);
  }
  return Rect(std::move(ivals));
}

Point RandPoint(std::mt19937_64& rng, int dims, int domain) {
  Point p;
  for (int d = 0; d < dims; ++d)
    p.push_back(static_cast<double>(rng() % static_cast<unsigned>(domain)));
  return p;
}

std::vector<std::pair<Rect, int>> MakeItems(int seed, int n, int dims,
                                            int domain) {
  std::mt19937_64 rng(seed);
  std::vector<std::pair<Rect, int>> items;
  items.reserve(n);
  for (int i = 0; i < n; ++i) items.emplace_back(RandRect(rng, dims, domain), i);
  return items;
}

// Fire a seeded battery of stab/intersecting/containing probes at both
// indexes and require *exact* (unsorted) output equality — the bit-identity
// contract, strictly stronger than set equality.
void ExpectBitIdentical(const SpatialIndex& want, const SpatialIndex& got,
                        int dims, int domain, int probes, int seed) {
  std::mt19937_64 rng(seed);
  for (int i = 0; i < probes; ++i) {
    const Point p = RandPoint(rng, dims, domain);
    EXPECT_EQ(want.stab(p), got.stab(p)) << "stab probe " << i;
    const Rect w = RandRect(rng, dims, domain);
    EXPECT_EQ(want.intersecting(w), got.intersecting(w))
        << "intersecting probe " << i;
    EXPECT_EQ(want.containing(w), got.containing(w))
        << "containing probe " << i;
  }
}

struct PagedParam {
  int seed;
  int entries;
  int dims;
  bool bulk;
};

class PagedRTreeOracleTest : public ::testing::TestWithParam<PagedParam> {};

// The tentpole oracle: plain RTree vs PagedRTree-on-memory vs
// PagedRTree-on-disk, same build history, identical answers.
TEST_P(PagedRTreeOracleTest, MemAndDiskMatchPlainRTreeBitForBit) {
  const PagedParam param = GetParam();
  const int kDomain = 50;
  const auto items = MakeItems(param.seed, param.entries, param.dims, kDomain);

  MemoryStorageManager mem_sm(1024);
  BufferPool::Options po;
  po.capacity = 16;
  BufferPool mem_pool(&mem_sm, po);

  const std::string path =
      TempPath("prtree_oracle_" + std::to_string(param.seed) + "_" +
               std::to_string(param.entries) + "_" +
               std::to_string(param.dims) + "_" +
               (param.bulk ? "bulk" : "ins") + ".pagefile");
  DiskStorageManager::Options dopts;
  dopts.page_size = 1024;
  auto disk_sm = DiskStorageManager::Create(path, dopts);
  BufferPool disk_pool(disk_sm.get(), po);

  RTree ref(8);
  if (param.bulk) {
    ref = RTree::BulkLoad(items, 8);
    PagedRTree mem_tree = PagedRTree::BulkLoad(&mem_pool, items, param.dims, 8);
    PagedRTree disk_tree =
        PagedRTree::BulkLoad(&disk_pool, items, param.dims, 8);
    EXPECT_EQ(mem_tree.height(), ref.height());
    EXPECT_EQ(disk_tree.height(), ref.height());
    EXPECT_TRUE(mem_tree.check_invariants());
    EXPECT_TRUE(disk_tree.check_invariants());
    ExpectBitIdentical(ref, mem_tree, param.dims, kDomain, 32, param.seed + 1);
    ExpectBitIdentical(ref, disk_tree, param.dims, kDomain, 32, param.seed + 1);
  } else {
    PagedRTree mem_tree(&mem_pool, param.dims, 8);
    PagedRTree disk_tree(&disk_pool, param.dims, 8);
    for (const auto& [r, id] : items) {
      ref.insert(r, id);
      mem_tree.insert(r, id);
      disk_tree.insert(r, id);
    }
    EXPECT_EQ(mem_tree.size(), ref.size());
    EXPECT_EQ(mem_tree.height(), ref.height());
    EXPECT_EQ(disk_tree.height(), ref.height());
    EXPECT_TRUE(mem_tree.check_invariants());
    EXPECT_TRUE(disk_tree.check_invariants());
    ExpectBitIdentical(ref, mem_tree, param.dims, kDomain, 32, param.seed + 1);
    ExpectBitIdentical(ref, disk_tree, param.dims, kDomain, 32, param.seed + 1);
    // The two storage backends allocate identical page-id sequences, so the
    // trees are not merely equivalent — their storage images agree page by
    // page below the CRC seam.
    EXPECT_EQ(mem_sm.page_count(), disk_sm->page_count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Battery, PagedRTreeOracleTest,
    ::testing::Values(PagedParam{1, 0, 2, false}, PagedParam{2, 1, 2, false},
                      PagedParam{3, 9, 2, false}, PagedParam{4, 150, 2, false},
                      PagedParam{5, 400, 2, false}, PagedParam{6, 150, 1, false},
                      PagedParam{7, 150, 4, false}, PagedParam{8, 150, 2, true},
                      PagedParam{9, 400, 2, true}, PagedParam{10, 9, 3, true}));

TEST(PagedRTree, SurvivesSyncAndReopenOnDisk) {
  const std::string path = TempPath("prtree_reopen.pagefile");
  const int kDims = 2, kDomain = 50, kN = 200;
  const auto items = MakeItems(11, kN, kDims, kDomain);
  RTree ref(8);
  for (const auto& [r, id] : items) ref.insert(r, id);

  DiskStorageManager::Options dopts;
  dopts.page_size = 1024;
  BufferPool::Options po;
  po.capacity = 16;
  {
    auto sm = DiskStorageManager::Create(path, dopts);
    BufferPool pool(sm.get(), po);
    PagedRTree tree(&pool, kDims, 8);
    for (const auto& [r, id] : items) tree.insert(r, id);
    tree.sync();
  }
  {
    auto sm = DiskStorageManager::Open(path);
    BufferPool pool(sm.get(), po);
    PagedRTree tree = PagedRTree::Open(&pool);
    EXPECT_EQ(tree.size(), ref.size());
    EXPECT_EQ(tree.height(), ref.height());
    EXPECT_EQ(tree.dims(), static_cast<std::size_t>(kDims));
    EXPECT_TRUE(tree.check_invariants());
    ExpectBitIdentical(ref, tree, kDims, kDomain, 48, 12);
    // A reopened tree keeps accepting inserts.
    tree.insert(Rect({Interval(0, 5), Interval(0, 5)}), 10000);
    ref.insert(Rect({Interval(0, 5), Interval(0, 5)}), 10000);
    ExpectBitIdentical(ref, tree, kDims, kDomain, 16, 13);
  }
}

TEST(PagedRTree, TinyPoolIsCorrectJustSlower) {
  // capacity 2 covers the worst-case simultaneous pins; answers must not
  // change, only the miss/eviction traffic.
  const int kDims = 2, kDomain = 50, kN = 120;
  const auto items = MakeItems(14, kN, kDims, kDomain);
  RTree ref(8);
  for (const auto& [r, id] : items) ref.insert(r, id);

  MemoryStorageManager sm(1024);
  BufferPool::Options po;
  po.capacity = 2;
  BufferPool pool(&sm, po);
  PagedRTree tree(&pool, kDims, 8);
  for (const auto& [r, id] : items) tree.insert(r, id);
  EXPECT_TRUE(tree.check_invariants());
  ExpectBitIdentical(ref, tree, kDims, kDomain, 32, 15);
  EXPECT_GT(pool.evictions(), 0u);
  EXPECT_GT(pool.misses(), 0u);
}

TEST(PagedRTree, PoolCountersAreDeterministic) {
  // Two identical build+query runs must scrape identically — the property
  // that lets storage_pool_* metrics join the deterministic scrape set.
  const auto run = [] {
    MemoryStorageManager sm(1024);
    BufferPool::Options po;
    po.capacity = 4;
    BufferPool pool(&sm, po);
    PagedRTree tree(&pool, 2, 8);
    const auto items = MakeItems(16, 150, 2, 50);
    for (const auto& [r, id] : items) tree.insert(r, id);
    std::mt19937_64 rng(17);
    std::vector<int> out;
    for (int i = 0; i < 24; ++i) tree.stab(RandPoint(rng, 2, 50), out);
    return std::vector<std::uint64_t>{pool.hits(), pool.misses(),
                                      pool.evictions(), pool.writebacks()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(a[0], 0u);
}

TEST(PagedRTree, MaxEntriesForPageMatchesConstructorLimit) {
  MemoryStorageManager sm(1024);
  BufferPool::Options po;
  po.capacity = 4;
  BufferPool pool(&sm, po);
  const std::size_t cap = PagedRTree::MaxEntriesForPage(sm.payload_size(), 2);
  EXPECT_GE(cap, 8u);
  // At the computed cap a tree constructs; one past it must throw.
  PagedRTree fits(&pool, 2, cap);
  EXPECT_THROW(PagedRTree(&pool, 2, cap + 1), std::invalid_argument);
  EXPECT_THROW(PagedRTree(&pool, 2, 3), std::invalid_argument);  // < 4
}

TEST(PagedRTree, EmptyTreeAnswersNothing) {
  MemoryStorageManager sm(1024);
  BufferPool::Options po;
  po.capacity = 4;
  BufferPool pool(&sm, po);
  PagedRTree tree(&pool, 2, 8);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.stab(Point{1.0, 1.0}).empty());
  EXPECT_TRUE(tree.check_invariants());
}

TEST(PagedRTree, OpenRejectsNonTreeFile) {
  MemoryStorageManager sm(1024);
  sm.set_meta("blob head=0 bytes=12 pages=1");
  BufferPool::Options po;
  po.capacity = 4;
  BufferPool pool(&sm, po);
  EXPECT_THROW(PagedRTree::Open(&pool), StorageError);
}

}  // namespace
}  // namespace pubsub
