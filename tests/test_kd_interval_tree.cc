#include "index/kd_interval_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "index/spatial_index.h"
#include "sim/scenario.h"

namespace pubsub {
namespace {

Rect RandRect(std::mt19937_64& rng, int dims, int domain) {
  std::vector<Interval> ivals;
  for (int d = 0; d < dims; ++d) {
    double a = static_cast<double>(rng() % static_cast<unsigned>(domain));
    double b = static_cast<double>(rng() % static_cast<unsigned>(domain));
    if (a > b) std::swap(a, b);
    ivals.emplace_back(a - 1.0, b);
  }
  return Rect(std::move(ivals));
}

std::vector<int> Sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(KdIntervalTree, EmptyTree) {
  KdIntervalTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0);
  EXPECT_TRUE(t.stab(Point{1.0}).empty());
}

TEST(KdIntervalTree, RejectsInvalidRects) {
  KdIntervalTree t;
  EXPECT_THROW(t.insert(Rect({Interval(2, 2)}), 0), std::invalid_argument);
  EXPECT_THROW(t.insert(Rect({Interval::All()}), 0), std::invalid_argument);
  EXPECT_THROW(KdIntervalTree(0), std::invalid_argument);
}

TEST(KdIntervalTree, HalfOpenStabbing) {
  KdIntervalTree t;
  t.insert(Rect({Interval(0, 4), Interval(0, 4)}), 1);
  EXPECT_EQ(t.stab(Point{4.0, 4.0}), std::vector<int>{1});
  EXPECT_TRUE(t.stab(Point{0.0, 2.0}).empty());
}

class KdOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(KdOracleTest, AgreesWithLinearIndex) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  constexpr int kDims = 3, kDomain = 15;
  const int entries = 50 + static_cast<int>(rng() % 1200);

  LinearIndex oracle;
  KdIntervalTree tree;
  for (int i = 0; i < entries; ++i) {
    const Rect r = RandRect(rng, kDims, kDomain);
    if (r.empty()) continue;
    oracle.insert(r, i);
    tree.insert(r, i);
  }
  EXPECT_EQ(tree.size(), oracle.size());

  for (int q = 0; q < 60; ++q) {
    Point p;
    for (int d = 0; d < kDims; ++d)
      p.push_back(static_cast<double>(rng() % kDomain));
    EXPECT_EQ(Sorted(tree.stab(p)), Sorted(oracle.stab(p)));
    const Rect w = RandRect(rng, kDims, kDomain);
    if (w.empty()) continue;
    EXPECT_EQ(Sorted(tree.intersecting(w)), Sorted(oracle.intersecting(w)));
    EXPECT_EQ(Sorted(tree.containing(w)), Sorted(oracle.containing(w)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdOracleTest, ::testing::Range(0, 8));

TEST(KdIntervalTree, AgreesWithOracleOnPaperWorkload) {
  const Scenario s = MakeStockScenario(600, PublicationHotSpots::kOne, 31);
  const Rect domain = s.workload.space.domain_rect();
  LinearIndex oracle;
  KdIntervalTree tree;
  for (std::size_t i = 0; i < s.workload.subscribers.size(); ++i) {
    const Rect r = s.workload.subscribers[i].interest.intersection(domain);
    oracle.insert(r, static_cast<int>(i));
    tree.insert(r, static_cast<int>(i));
  }
  Rng rng(32);
  for (int q = 0; q < 100; ++q) {
    const Publication pub = s.pub->sample(rng);
    EXPECT_EQ(Sorted(tree.stab(pub.point)), Sorted(oracle.stab(pub.point)));
  }
}

TEST(KdIntervalTree, DuplicateRectsStayALeafWithoutLooping) {
  KdIntervalTree t(4);
  const Rect r({Interval(0, 3), Interval(0, 3)});
  for (int i = 0; i < 40; ++i) t.insert(r, i);
  EXPECT_EQ(t.size(), 40u);
  EXPECT_EQ(t.stab(Point{1.0, 1.0}).size(), 40u);
}

TEST(KdIntervalTree, BuildsSkewAwareStructure) {
  // Many small disjoint rectangles: the tree should actually split (height
  // > 1) and keep spanning lists small relative to the total.
  std::mt19937_64 rng(9);
  KdIntervalTree t(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = static_cast<double>(rng() % 500);
    const double y = static_cast<double>(rng() % 500);
    t.insert(Rect({Interval(x, x + 1), Interval(y, y + 1)}), i);
  }
  EXPECT_GT(t.height(), 3);
  EXPECT_LT(t.spanning_count(), t.size() / 2);
}

TEST(KdIntervalTree, MoveSemantics) {
  KdIntervalTree a;
  a.insert(Rect({Interval(0, 2)}), 7);
  KdIntervalTree b = std::move(a);
  EXPECT_EQ(b.stab(Point{1.0}), std::vector<int>{7});
}

}  // namespace
}  // namespace pubsub
