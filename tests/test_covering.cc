#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "core/covering.h"
#include "index/slab_index.h"

namespace pubsub {
namespace {

using Delta = CoveringTable::Delta;

// Apply a covering delta to the backing index.  Ops are ordered; one churn
// call can add and then remove the same entry id (see core/covering.h).
void Apply(SlabIndex& slab, const Delta& delta) {
  for (const CoveringTable::IndexOp& op : delta) {
    if (op.kind == CoveringTable::IndexOp::kAdd)
      slab.insert(op.rect, op.entry);
    else
      slab.erase(op.entry);
  }
}

// Full match through the covering pipeline: stab indexed entries, expand
// each hit, canonicalize by sorting (the broker scatter does this).
std::vector<SubscriberId> Match(const SlabIndex& slab,
                                const CoveringTable& table, const Point& p) {
  std::vector<int> hits;
  std::vector<std::uint64_t> tmp;
  slab.stab(p, hits, tmp);
  std::vector<SubscriberId> subs;
  for (const int e : hits) table.expand(e, p, subs);
  std::sort(subs.begin(), subs.end());
  return subs;
}

Rect R1(double lo, double hi) { return Rect({Interval(lo, hi)}); }
Rect R2(double xlo, double xhi, double ylo, double yhi) {
  return Rect({Interval(xlo, xhi), Interval(ylo, yhi)});
}

// --- refcount dedup: entries grow with DISTINCT interest -----------------
// The acceptance criterion of ISSUE 6: a million subscribers sharing one
// rectangle must cost one index entry; churn on a known rectangle must
// never touch the backing index.

TEST(Covering, EqualRectsShareOneEntryWithRefcount) {
  CoveringTable t;
  Delta d;
  t.subscribe(0, R1(0, 10), d);
  EXPECT_EQ(d.size(), 1u);  // first distinct rect: one index add
  EXPECT_EQ(d[0].kind, CoveringTable::IndexOp::kAdd);
  for (SubscriberId s = 1; s < 100; ++s) {
    d.clear();
    t.subscribe(s, R1(0, 10), d);
    EXPECT_TRUE(d.empty()) << "duplicate rect must not touch the index";
  }
  EXPECT_EQ(t.subscriber_count(), 100u);
  EXPECT_EQ(t.entry_count(), 1u);
  EXPECT_EQ(t.indexed_count(), 1u);
  EXPECT_EQ(t.covered_subscriber_count(), 0u);

  // Riders leave one by one; the entry (and the index) survive until the
  // last reference drops.
  for (SubscriberId s = 0; s < 99; ++s) {
    d.clear();
    t.unsubscribe(s, d);
    EXPECT_TRUE(d.empty());
  }
  EXPECT_EQ(t.entry_count(), 1u);
  d.clear();
  t.unsubscribe(99, d);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].kind, CoveringTable::IndexOp::kRemove);
  EXPECT_EQ(t.entry_count(), 0u);
  EXPECT_EQ(t.subscriber_count(), 0u);
}

TEST(Covering, CoveredChildNeverReachesTheIndex) {
  CoveringTable t;
  Delta d;
  t.subscribe(0, R2(0, 10, 0, 10), d);
  d.clear();
  t.subscribe(1, R2(2, 5, 2, 5), d);  // inside sub 0's rect
  EXPECT_TRUE(d.empty()) << "covered entry must not be indexed";
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(t.indexed_count(), 1u);
  EXPECT_EQ(t.covered_subscriber_count(), 1u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Covering, PromotionDemotesNowCoveredEntries) {
  CoveringTable t;
  Delta d;
  t.subscribe(0, R2(2, 5, 2, 5), d);
  t.subscribe(1, R2(6, 9, 6, 9), d);
  d.clear();
  // A rect containing both: the newcomer is indexed and both old entries
  // demote — the delta removes them in the same ordered op list.
  t.subscribe(2, R2(0, 10, 0, 10), d);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].kind, CoveringTable::IndexOp::kAdd);
  EXPECT_EQ(d[1].kind, CoveringTable::IndexOp::kRemove);
  EXPECT_EQ(d[2].kind, CoveringTable::IndexOp::kRemove);
  EXPECT_EQ(t.indexed_count(), 1u);
  EXPECT_EQ(t.entry_count(), 3u);
  EXPECT_EQ(t.covered_subscriber_count(), 2u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Covering, IndexedDeathRehomesChildren) {
  CoveringTable t;
  Delta d;
  t.subscribe(0, R2(0, 10, 0, 10), d);   // parent
  t.subscribe(1, R2(1, 4, 1, 4), d);     // child A
  t.subscribe(2, R2(2, 3, 2, 3), d);     // child B (inside A too)
  d.clear();
  t.unsubscribe(0, d);
  // Parent leaves: A promotes (it is maximal among survivors) and B
  // re-homes under A rather than being indexed.
  EXPECT_EQ(t.entry_count(), 2u);
  EXPECT_EQ(t.indexed_count(), 1u);
  EXPECT_EQ(t.covered_subscriber_count(), 1u);
  EXPECT_TRUE(t.check_invariants());
  // Matching still exact through the backing index.
  SlabIndex slab;
  for (const auto& [rect, id] : t.indexed_entries()) slab.insert(rect, id);
  EXPECT_EQ(Match(slab, t, Point{2.5, 2.5}),
            (std::vector<SubscriberId>{1, 2}));
  EXPECT_EQ(Match(slab, t, Point{3.5, 3.5}), (std::vector<SubscriberId>{1}));
  EXPECT_TRUE(Match(slab, t, Point{8.0, 8.0}).empty());
}

TEST(Covering, UpdateIsNoOpWhenRectUnchanged) {
  CoveringTable t;
  Delta d;
  t.subscribe(0, R1(0, 10), d);
  d.clear();
  t.update(0, R1(0, 10), d);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(t.entry_count(), 1u);
  // A real change moves the rider to a fresh entry.
  t.update(0, R1(5, 20), d);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(t.entry_count(), 1u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Covering, ChurnContractErrors) {
  CoveringTable t;
  Delta d;
  t.subscribe(3, R1(0, 1), d);
  EXPECT_THROW(t.subscribe(3, R1(0, 2), d), std::invalid_argument);
  EXPECT_THROW(t.subscribe(4, Rect({Interval()}), d), std::invalid_argument);
  EXPECT_THROW(t.subscribe(4, R2(0, 1, 0, 1), d), std::invalid_argument);
  EXPECT_THROW(t.unsubscribe(9, d), std::out_of_range);
  EXPECT_THROW(t.unsubscribe(-1, d), std::out_of_range);
  EXPECT_THROW(t.update(9, R1(0, 1), d), std::out_of_range);
  // The failed calls left no partial state behind.
  EXPECT_EQ(t.subscriber_count(), 1u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Covering, ExportImportRoundTripIsVerbatim) {
  CoveringTable t;
  Delta d;
  t.subscribe(0, R2(0, 10, 0, 10), d);
  t.subscribe(1, R2(1, 4, 1, 4), d);
  t.subscribe(2, R2(0, 10, 0, 10), d);
  t.subscribe(3, R2(20, 30, 20, 30), d);
  t.unsubscribe(3, d);  // leaves a free-list slot
  const CoveringTable::State state = t.export_state();

  CoveringTable back;
  back.import_state(state);
  EXPECT_TRUE(back.check_invariants());
  EXPECT_EQ(back.subscriber_count(), t.subscriber_count());
  EXPECT_EQ(back.entry_count(), t.entry_count());
  EXPECT_EQ(back.indexed_count(), t.indexed_count());
  EXPECT_EQ(back.covered_subscriber_count(), t.covered_subscriber_count());
  EXPECT_EQ(back.entry_of(0), t.entry_of(0));
  EXPECT_EQ(back.entry_of(1), t.entry_of(1));
  // Verbatim restore includes the free list: the next alloc re-issues the
  // same id in both tables.
  Delta da, db;
  t.subscribe(7, R2(50, 60, 50, 60), da);
  back.subscribe(7, R2(50, 60, 50, 60), db);
  EXPECT_EQ(t.entry_of(7), back.entry_of(7));
  const CoveringTable::State sa = t.export_state();
  const CoveringTable::State sb = back.export_state();
  ASSERT_EQ(sa.entries.size(), sb.entries.size());
  for (std::size_t i = 0; i < sa.entries.size(); ++i) {
    EXPECT_EQ(sa.entries[i].id, sb.entries[i].id);
    EXPECT_EQ(sa.entries[i].rect, sb.entries[i].rect);
    EXPECT_EQ(sa.entries[i].parent, sb.entries[i].parent);
    EXPECT_EQ(sa.entries[i].subs, sb.entries[i].subs);
    EXPECT_EQ(sa.entries[i].children, sb.entries[i].children);
  }
  EXPECT_EQ(sa.free_list, sb.free_list);
}

TEST(Covering, ImportRejectsStructuralCorruption) {
  CoveringTable t;
  Delta d;
  t.subscribe(0, R2(0, 10, 0, 10), d);
  t.subscribe(1, R2(1, 4, 1, 4), d);
  const CoveringTable::State good = t.export_state();

  CoveringTable sink;
  {  // child not contained in its parent
    CoveringTable::State bad = good;
    for (CoveringEntryState& e : bad.entries)
      if (e.parent >= 0) e.rect = R2(-5, -1, -5, -1);
    EXPECT_THROW(sink.import_state(bad), std::invalid_argument);
  }
  {  // rider listed twice
    CoveringTable::State bad = good;
    bad.entries[0].subs.push_back(bad.entries[0].subs[0]);
    EXPECT_THROW(sink.import_state(bad), std::invalid_argument);
  }
  {  // free list names a live entry
    CoveringTable::State bad = good;
    bad.free_list.push_back(bad.entries[0].id);
    EXPECT_THROW(sink.import_state(bad), std::invalid_argument);
  }
  {  // dangling parent id
    CoveringTable::State bad = good;
    for (CoveringEntryState& e : bad.entries)
      if (e.parent >= 0) e.parent = 41;
    EXPECT_THROW(sink.import_state(bad), std::invalid_argument);
  }
}

// --- randomized churn: delta stream keeps a SlabIndex exact ---------------
// The pipeline under test is exactly the broker's: covering table in front,
// slab index behind, every delta applied in order.  The oracle is the plain
// per-subscriber rectangle set.

struct FuzzParam {
  int seed;
  int dims;
  int ops;
};

class CoveringFuzz : public ::testing::TestWithParam<FuzzParam> {};

Rect RandRect(std::mt19937_64& rng, int dims, int domain) {
  std::vector<Interval> ivals;
  for (int d = 0; d < dims; ++d) {
    double a = static_cast<double>(rng() % static_cast<unsigned>(domain));
    double b = static_cast<double>(rng() % static_cast<unsigned>(domain));
    if (a > b) std::swap(a, b);
    ivals.emplace_back(a - 1.0, b);
  }
  return Rect(std::move(ivals));
}

TEST_P(CoveringFuzz, DeltaStreamMatchesSubscriberOracle) {
  const FuzzParam param = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(param.seed));
  constexpr int kDomain = 10;  // small: forces dedup, nesting, promotion
  constexpr int kSubSpace = 64;

  CoveringTable table;
  SlabIndex slab;
  Delta delta;
  std::map<SubscriberId, Rect> oracle;

  for (int op = 0; op < param.ops; ++op) {
    const SubscriberId s = static_cast<SubscriberId>(rng() % kSubSpace);
    delta.clear();
    switch (rng() % 3) {
      case 0:
        if (!table.contains(s)) {
          const Rect r = RandRect(rng, param.dims, kDomain);
          table.subscribe(s, r, delta);
          oracle[s] = r;
        }
        break;
      case 1:
        if (table.contains(s)) {
          table.unsubscribe(s, delta);
          oracle.erase(s);
        }
        break;
      default:
        if (table.contains(s)) {
          const Rect r = RandRect(rng, param.dims, kDomain);
          table.update(s, r, delta);
          oracle[s] = r;
        }
        break;
    }
    Apply(slab, delta);

    ASSERT_TRUE(table.check_invariants()) << "op " << op;
    ASSERT_EQ(slab.size(), table.indexed_count()) << "op " << op;
    ASSERT_EQ(table.subscriber_count(), oracle.size());

    for (int q = 0; q < 4; ++q) {
      Point p;
      for (int d = 0; d < param.dims; ++d)
        p.push_back(static_cast<double>(rng() % kDomain) -
                    (rng() % 2 == 0 ? 0.0 : 0.5));
      std::vector<SubscriberId> expect;
      for (const auto& [sub, rect] : oracle)
        if (rect.contains(p)) expect.push_back(sub);
      ASSERT_EQ(Match(slab, table, p), expect) << "op " << op;
    }
  }

  // Drain and confirm the index empties with the table.
  for (const auto& [sub, rect] : std::map<SubscriberId, Rect>(oracle)) {
    delta.clear();
    table.unsubscribe(sub, delta);
    Apply(slab, delta);
  }
  EXPECT_EQ(table.subscriber_count(), 0u);
  EXPECT_EQ(table.entry_count(), 0u);
  EXPECT_EQ(slab.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoveringFuzz,
                         ::testing::Values(FuzzParam{21, 1, 400},
                                           FuzzParam{22, 2, 400},
                                           FuzzParam{23, 3, 250},
                                           FuzzParam{24, 2, 800}));

}  // namespace
}  // namespace pubsub
