#include <gtest/gtest.h>

#include "core/cluster_types.h"

namespace pubsub {
namespace {

BitVector Bits(std::size_t n, std::initializer_list<std::size_t> set) {
  BitVector v(n);
  for (std::size_t i : set) v.set(i);
  return v;
}

TEST(ExpectedWaste, ZeroForIdenticalVectors) {
  const BitVector a = Bits(10, {1, 2, 3});
  EXPECT_EQ(ExpectedWaste(a, 0.5, a, 0.9), 0.0);
}

TEST(ExpectedWaste, WeightsAsymmetricDifferences) {
  // d(a,b) = p_a·|a\b| + p_b·|b\a|
  const BitVector a = Bits(10, {1, 2, 3});
  const BitVector b = Bits(10, {3, 4});
  // |a\b| = 2 (bits 1,2); |b\a| = 1 (bit 4).
  EXPECT_DOUBLE_EQ(ExpectedWaste(a, 0.5, b, 0.25), 0.5 * 2 + 0.25 * 1);
  // Swapping arguments swaps the roles but the total is symmetric.
  EXPECT_DOUBLE_EQ(ExpectedWaste(b, 0.25, a, 0.5), 0.5 * 2 + 0.25 * 1);
}

TEST(ExpectedWaste, ZeroProbabilityCostsNothing) {
  const BitVector a = Bits(8, {0});
  const BitVector b = Bits(8, {7});
  EXPECT_EQ(ExpectedWaste(a, 0.0, b, 0.0), 0.0);
}

TEST(GroupState, AddRemoveRoundTrips) {
  const BitVector a = Bits(6, {0, 1});
  const BitVector b = Bits(6, {1, 2});
  GroupState g(6);
  g.add(ClusterCell{&a, 0.5});
  g.add(ClusterCell{&b, 0.25});
  EXPECT_EQ(g.size(), 2u);
  EXPECT_DOUBLE_EQ(g.prob(), 0.75);
  EXPECT_EQ(g.vec(), Bits(6, {0, 1, 2}));

  g.remove(ClusterCell{&a, 0.5});
  EXPECT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g.prob(), 0.25);
  // Bit 1 survives (still counted by b); bit 0 is gone.
  EXPECT_EQ(g.vec(), Bits(6, {1, 2}));

  g.remove(ClusterCell{&b, 0.25});
  EXPECT_TRUE(g.empty());
  EXPECT_TRUE(g.vec().none());
  EXPECT_THROW(g.remove(ClusterCell{&b, 0.25}), std::logic_error);
}

TEST(GroupState, MergeFromCombinesCounts) {
  const BitVector a = Bits(6, {0});
  const BitVector b = Bits(6, {0, 1});
  GroupState g(6), h(6);
  g.add(ClusterCell{&a, 0.1});
  h.add(ClusterCell{&b, 0.2});
  g.merge_from(h);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_DOUBLE_EQ(g.prob(), 0.30000000000000004);
  EXPECT_EQ(g.vec(), Bits(6, {0, 1}));
  // After removing b's cell, bit 0 must survive via a's count.
  g.remove(ClusterCell{&b, 0.2});
  EXPECT_EQ(g.vec(), Bits(6, {0}));
}

TEST(GroupState, DistanceToCellMatchesFormula) {
  const BitVector a = Bits(6, {0, 1});
  const BitVector b = Bits(6, {2});
  GroupState g(6);
  g.add(ClusterCell{&a, 0.5});
  const ClusterCell cell{&b, 0.2};
  // |cell\g| = 1, |g\cell| = 2.
  EXPECT_DOUBLE_EQ(g.distance_to(cell), 0.2 * 1 + 0.5 * 2);
}

TEST(TotalExpectedWasteTest, ZeroWhenGroupsHomogeneous) {
  const BitVector a = Bits(4, {0, 1});
  const BitVector b = Bits(4, {2});
  const std::vector<ClusterCell> cells = {{&a, 0.3}, {&a, 0.4}, {&b, 0.2}};
  EXPECT_EQ(TotalExpectedWaste(cells, {0, 0, 1}, 2), 0.0);
}

TEST(TotalExpectedWasteTest, CountsForeignBitsWeightedByProb) {
  const BitVector a = Bits(4, {0});
  const BitVector b = Bits(4, {1, 2});
  const std::vector<ClusterCell> cells = {{&a, 0.5}, {&b, 0.25}};
  // One group: s(g) = {0,1,2}.  Waste = 0.5·|{1,2}| + 0.25·|{0}|.
  EXPECT_DOUBLE_EQ(TotalExpectedWaste(cells, {0, 0}, 1), 0.5 * 2 + 0.25 * 1);
}

TEST(TotalExpectedWasteTest, UnclusteredCellsFree) {
  const BitVector a = Bits(4, {0});
  const BitVector b = Bits(4, {1});
  const std::vector<ClusterCell> cells = {{&a, 0.5}, {&b, 0.5}};
  EXPECT_EQ(TotalExpectedWaste(cells, {0, -1}, 1), 0.0);
}

TEST(TotalExpectedWasteTest, Validation) {
  const BitVector a = Bits(4, {0});
  const std::vector<ClusterCell> cells = {{&a, 0.5}};
  EXPECT_THROW(TotalExpectedWaste(cells, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(TotalExpectedWaste(cells, {5}, 2), std::invalid_argument);
}

TEST(ClusterCellTest, PopularityIsProbTimesCount) {
  const BitVector a = Bits(10, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ((ClusterCell{&a, 0.25}.popularity()), 1.0);
}

}  // namespace
}  // namespace pubsub
