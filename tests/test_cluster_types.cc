#include <gtest/gtest.h>

#include <vector>

#include "core/cluster_types.h"
#include "util/rng.h"

namespace pubsub {
namespace {

BitVector Bits(std::size_t n, std::initializer_list<std::size_t> set) {
  BitVector v(n);
  for (std::size_t i : set) v.set(i);
  return v;
}

TEST(ExpectedWaste, ZeroForIdenticalVectors) {
  const BitVector a = Bits(10, {1, 2, 3});
  EXPECT_EQ(ExpectedWaste(a, 0.5, a, 0.9), 0.0);
}

TEST(ExpectedWaste, WeightsAsymmetricDifferences) {
  // d(a,b) = p_a·|a\b| + p_b·|b\a|
  const BitVector a = Bits(10, {1, 2, 3});
  const BitVector b = Bits(10, {3, 4});
  // |a\b| = 2 (bits 1,2); |b\a| = 1 (bit 4).
  EXPECT_DOUBLE_EQ(ExpectedWaste(a, 0.5, b, 0.25), 0.5 * 2 + 0.25 * 1);
  // Swapping arguments swaps the roles but the total is symmetric.
  EXPECT_DOUBLE_EQ(ExpectedWaste(b, 0.25, a, 0.5), 0.5 * 2 + 0.25 * 1);
}

TEST(ExpectedWaste, ZeroProbabilityCostsNothing) {
  const BitVector a = Bits(8, {0});
  const BitVector b = Bits(8, {7});
  EXPECT_EQ(ExpectedWaste(a, 0.0, b, 0.0), 0.0);
}

TEST(GroupState, AddRemoveRoundTrips) {
  const BitVector a = Bits(6, {0, 1});
  const BitVector b = Bits(6, {1, 2});
  GroupState g(6);
  g.add(ClusterCell{&a, 0.5});
  g.add(ClusterCell{&b, 0.25});
  EXPECT_EQ(g.size(), 2u);
  EXPECT_DOUBLE_EQ(g.prob(), 0.75);
  EXPECT_EQ(g.vec(), Bits(6, {0, 1, 2}));

  g.remove(ClusterCell{&a, 0.5});
  EXPECT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g.prob(), 0.25);
  // Bit 1 survives (still counted by b); bit 0 is gone.
  EXPECT_EQ(g.vec(), Bits(6, {1, 2}));

  g.remove(ClusterCell{&b, 0.25});
  EXPECT_TRUE(g.empty());
  EXPECT_TRUE(g.vec().none());
  EXPECT_THROW(g.remove(ClusterCell{&b, 0.25}), std::logic_error);
}

TEST(GroupState, MergeFromCombinesCounts) {
  const BitVector a = Bits(6, {0});
  const BitVector b = Bits(6, {0, 1});
  GroupState g(6), h(6);
  g.add(ClusterCell{&a, 0.1});
  h.add(ClusterCell{&b, 0.2});
  g.merge_from(h);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_DOUBLE_EQ(g.prob(), 0.30000000000000004);
  EXPECT_EQ(g.vec(), Bits(6, {0, 1}));
  // After removing b's cell, bit 0 must survive via a's count.
  g.remove(ClusterCell{&b, 0.2});
  EXPECT_EQ(g.vec(), Bits(6, {0}));
}

TEST(GroupState, DistanceToCellMatchesFormula) {
  const BitVector a = Bits(6, {0, 1});
  const BitVector b = Bits(6, {2});
  GroupState g(6);
  g.add(ClusterCell{&a, 0.5});
  const ClusterCell cell{&b, 0.2};
  // |cell\g| = 1, |g\cell| = 2.
  EXPECT_DOUBLE_EQ(g.distance_to(cell), 0.2 * 1 + 0.5 * 2);
}

TEST(TotalExpectedWasteTest, ZeroWhenGroupsHomogeneous) {
  const BitVector a = Bits(4, {0, 1});
  const BitVector b = Bits(4, {2});
  const std::vector<ClusterCell> cells = {{&a, 0.3}, {&a, 0.4}, {&b, 0.2}};
  EXPECT_EQ(TotalExpectedWaste(cells, {0, 0, 1}, 2), 0.0);
}

TEST(TotalExpectedWasteTest, CountsForeignBitsWeightedByProb) {
  const BitVector a = Bits(4, {0});
  const BitVector b = Bits(4, {1, 2});
  const std::vector<ClusterCell> cells = {{&a, 0.5}, {&b, 0.25}};
  // One group: s(g) = {0,1,2}.  Waste = 0.5·|{1,2}| + 0.25·|{0}|.
  EXPECT_DOUBLE_EQ(TotalExpectedWaste(cells, {0, 0}, 1), 0.5 * 2 + 0.25 * 1);
}

TEST(TotalExpectedWasteTest, UnclusteredCellsFree) {
  const BitVector a = Bits(4, {0});
  const BitVector b = Bits(4, {1});
  const std::vector<ClusterCell> cells = {{&a, 0.5}, {&b, 0.5}};
  EXPECT_EQ(TotalExpectedWaste(cells, {0, -1}, 1), 0.0);
}

TEST(TotalExpectedWasteTest, Validation) {
  const BitVector a = Bits(4, {0});
  const std::vector<ClusterCell> cells = {{&a, 0.5}};
  EXPECT_THROW(TotalExpectedWaste(cells, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(TotalExpectedWaste(cells, {5}, 2), std::invalid_argument);
}

// Random churn over one group: the incrementally-maintained cardinality(),
// unique() and waste() must track a from-scratch recomputation after every
// add/remove.
TEST(GroupState, IncrementalStateTracksOracleUnderChurn) {
  Rng rng(11);
  const std::size_t ns = 130;  // spans three 64-bit words
  std::vector<BitVector> storage;
  storage.reserve(40);
  std::vector<ClusterCell> cells;
  for (std::size_t c = 0; c < 40; ++c) {
    BitVector v(ns);
    for (std::size_t i = 0; i < ns; ++i)
      if (rng.bernoulli(0.2)) v.set(i);
    if (v.none()) v.set(c);
    storage.push_back(std::move(v));
    cells.push_back(ClusterCell{&storage.back(), 0.01 + rng.uniform()});
  }

  GroupState g(ns);
  std::vector<char> in(cells.size(), 0);
  for (int step = 0; step < 200; ++step) {
    const auto i =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(cells.size()) - 1));
    if (in[i]) {
      g.remove(cells[i]);
      in[i] = 0;
    } else {
      g.add(cells[i]);
      in[i] = 1;
    }

    // Oracle: materialize union, per-bit counts, and the waste sum.
    BitVector want_vec(ns), want_unique(ns);
    std::vector<int> counts(ns, 0);
    double want_waste = 0.0;
    std::vector<ClusterCell> members;
    for (std::size_t j = 0; j < cells.size(); ++j) {
      if (!in[j]) continue;
      members.push_back(cells[j]);
      want_vec |= *cells[j].members;
      cells[j].members->for_each_set([&](std::size_t b) { ++counts[b]; });
    }
    for (std::size_t b = 0; b < ns; ++b)
      if (counts[b] == 1) want_unique.set(b);
    for (const ClusterCell& m : members)
      want_waste += m.prob * static_cast<double>(want_vec.count_and_not(*m.members));

    ASSERT_EQ(g.vec(), want_vec);
    ASSERT_EQ(g.unique(), want_unique);
    ASSERT_EQ(g.cardinality(), want_vec.count());
    // waste() associates differently (prob·card − member_mass), so compare
    // to the per-member sum within FP slack proportional to the magnitude.
    ASSERT_NEAR(g.waste(), want_waste, 1e-9 * (1.0 + want_waste));
    // And against the global objective with every member in group 0.
    if (!members.empty()) {
      Assignment all_zero(members.size(), 0);
      ASSERT_NEAR(g.waste(), TotalExpectedWaste(members, all_zero, 1),
                  1e-9 * (1.0 + want_waste));
    }
  }
}

TEST(GroupState, ResetClearsWithoutReleasingSize) {
  const BitVector a = Bits(70, {0, 64, 69});
  GroupState g(70);
  g.add(ClusterCell{&a, 0.4});
  g.reset();
  EXPECT_TRUE(g.empty());
  EXPECT_TRUE(g.vec().none());
  EXPECT_TRUE(g.unique().none());
  EXPECT_EQ(g.cardinality(), 0u);
  EXPECT_EQ(g.waste(), 0.0);
  // Still usable after reset.
  g.add(ClusterCell{&a, 0.4});
  EXPECT_EQ(g.vec(), a);
  EXPECT_EQ(g.cardinality(), 3u);
}

// distance_to_excluding must be bit-identical to the mutate/measure/restore
// dance it replaces, and report the union bits the member uniquely holds.
TEST(GroupState, DistanceToExcludingMatchesRemoveAddDance) {
  Rng rng(12);
  const std::size_t ns = 190;
  std::vector<BitVector> storage;
  storage.reserve(12);
  std::vector<ClusterCell> cells;
  for (std::size_t c = 0; c < 12; ++c) {
    BitVector v(ns);
    for (std::size_t i = 0; i < ns; ++i)
      if (rng.bernoulli(0.3)) v.set(i);
    if (v.none()) v.set(c);
    storage.push_back(std::move(v));
    cells.push_back(ClusterCell{&storage.back(), 0.01 + rng.uniform()});
  }
  GroupState g(ns);
  for (const ClusterCell& c : cells) g.add(c);

  for (const ClusterCell& c : cells) {
    std::size_t unique_bits = 0;
    const double fast = g.distance_to_excluding(c, &unique_bits);
    EXPECT_EQ(unique_bits, c.members->count_and(g.unique()));

    GroupState h(ns);
    for (const ClusterCell& m : cells) h.add(m);
    h.remove(c);
    const double slow = h.distance_to(c);
    EXPECT_EQ(fast, slow);  // bit-identical, not just close
  }
}

// The batched kernel must produce bit-identical distances to per-candidate
// distance_to calls, across block boundaries (kBlock = 8 internally).
TEST(BatchedGroupWasteTest, BitIdenticalToPerCandidateDistance) {
  Rng rng(13);
  const std::size_t ns = 200;
  std::vector<BitVector> storage;
  storage.reserve(30);
  std::vector<ClusterCell> cells;
  for (std::size_t c = 0; c < 30; ++c) {
    BitVector v(ns);
    for (std::size_t i = 0; i < ns; ++i)
      if (rng.bernoulli(0.25)) v.set(i);
    if (v.none()) v.set(c);
    storage.push_back(std::move(v));
    cells.push_back(ClusterCell{&storage.back(), 0.01 + rng.uniform()});
  }
  std::vector<GroupState> groups;
  for (int gi = 0; gi < 19; ++gi) {  // not a multiple of the block size
    groups.emplace_back(ns);
    for (int m = 0; m < 3; ++m)
      groups.back().add(cells[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cells.size()) - 1))]);
  }
  std::vector<int> cand(groups.size());
  for (std::size_t j = 0; j < cand.size(); ++j)
    cand[j] = static_cast<int>(cand.size() - 1 - j);  // arbitrary order

  for (const ClusterCell& cell : cells) {
    std::vector<double> dist(cand.size());
    std::vector<std::size_t> cell_not_g(cand.size());
    BatchedGroupWaste(cell, groups, cand.data(), cand.size(), dist.data(),
                      cell_not_g.data());
    for (std::size_t j = 0; j < cand.size(); ++j) {
      const GroupState& g = groups[static_cast<std::size_t>(cand[j])];
      EXPECT_EQ(dist[j], g.distance_to(cell));
      EXPECT_EQ(cell_not_g[j], cell.members->count_and_not(g.vec()));
    }
  }
}

TEST(ClusterCellTest, PopularityIsProbTimesCount) {
  const BitVector a = Bits(10, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ((ClusterCell{&a, 0.25}.popularity()), 1.0);
}

}  // namespace
}  // namespace pubsub
