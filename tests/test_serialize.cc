#include "io/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/scenario.h"

namespace pubsub {
namespace {

template <typename T, typename WriteFn, typename ReadFn>
T RoundTrip(const T& value, WriteFn write, ReadFn read) {
  std::ostringstream os;
  write(os, value);
  std::istringstream is(os.str());
  return read(is);
}

TEST(Serialize, GraphRoundTrip) {
  Rng rng(1);
  const TransitStubNetwork net = GenerateTransitStub(PaperNet100(), rng);
  const Graph& g = net.graph;
  const Graph back = RoundTrip(g, WriteGraph, ReadGraph);
  ASSERT_EQ(back.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back.edge(e).u, g.edge(e).u);
    EXPECT_EQ(back.edge(e).v, g.edge(e).v);
    EXPECT_EQ(back.edge(e).cost, g.edge(e).cost);
  }
}

TEST(Serialize, TransitStubRoundTrip) {
  Rng rng(2);
  const TransitStubNetwork net = GenerateTransitStub(PaperNetSection5(), rng);
  const TransitStubNetwork back = RoundTrip(net, WriteTransitStub, ReadTransitStub);
  EXPECT_EQ(back.graph.num_nodes(), net.graph.num_nodes());
  EXPECT_EQ(back.graph.num_edges(), net.graph.num_edges());
  EXPECT_EQ(back.num_stubs, net.num_stubs);
  EXPECT_EQ(back.transit_nodes, net.transit_nodes);
  EXPECT_EQ(back.stub_of_node, net.stub_of_node);
  EXPECT_EQ(back.block_of_node, net.block_of_node);
  EXPECT_EQ(back.block_of_stub, net.block_of_stub);
  EXPECT_EQ(back.stub_members, net.stub_members);
}

TEST(Serialize, WorkloadRoundTripPreservesUnboundedEnds) {
  Rng rng(3);
  const TransitStubNetwork net = GenerateTransitStub(PaperNet100(), rng);
  Section3Params params;  // regional dim can be the full (unbounded) domain
  params.regionalism = 0.5;
  Rng wrng(4);
  Workload wl = GenerateSection3Subscriptions(net, 200, params, wrng);
  // Inject a genuinely unbounded rectangle.
  wl.subscribers[0].interest = Rect({Interval::All(), Interval::AtMost(5),
                                     Interval::GreaterThan(2), Interval(1, 2)});

  const Workload back = RoundTrip(wl, WriteWorkload, ReadWorkload);
  ASSERT_EQ(back.subscribers.size(), wl.subscribers.size());
  EXPECT_EQ(back.space.dims(), wl.space.dims());
  for (std::size_t d = 0; d < wl.space.dims(); ++d) {
    EXPECT_EQ(back.space.dim(d).name, wl.space.dim(d).name);
    EXPECT_EQ(back.space.dim(d).domain_size, wl.space.dim(d).domain_size);
  }
  for (std::size_t i = 0; i < wl.subscribers.size(); ++i) {
    EXPECT_EQ(back.subscribers[i].node, wl.subscribers[i].node);
    EXPECT_EQ(back.subscribers[i].interest, wl.subscribers[i].interest);
  }
}

TEST(Serialize, WorkloadRoundTripExactDoubles) {
  Workload wl;
  wl.space = EventSpace({{"x", 21}});
  Subscriber s;
  s.node = 0;
  s.interest = Rect({Interval(0.1 + 0.2, 19.999999999999996)});
  wl.subscribers.push_back(s);
  const Workload back = RoundTrip(wl, WriteWorkload, ReadWorkload);
  EXPECT_EQ(back.subscribers[0].interest[0].lo(), 0.1 + 0.2);
  EXPECT_EQ(back.subscribers[0].interest[0].hi(), 19.999999999999996);
}

TEST(Serialize, ClusteringRoundTrip) {
  ClusteringFile c;
  c.num_groups = 5;
  c.assignment = {0, 4, 2, -1, 1, 0};
  c.cells_fed = c.assignment.size();
  const ClusteringFile back = RoundTrip(c, WriteClustering, ReadClustering);
  EXPECT_EQ(back.num_groups, c.num_groups);
  EXPECT_EQ(back.cells_fed, c.cells_fed);
  EXPECT_EQ(back.assignment, c.assignment);
}

TEST(Serialize, RejectsBadMagic) {
  std::istringstream is("not-a-pubsub-file\n");
  EXPECT_THROW(ReadGraph(is), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedInput) {
  std::istringstream is("pubsub-graph v1\nnodes 3\nedges 2\n0 1 1.5\n");
  EXPECT_THROW(ReadGraph(is), std::runtime_error);
}

TEST(Serialize, RejectsOutOfRangeEdge) {
  std::istringstream is("pubsub-graph v1\nnodes 2\nedges 1\n0 7 1.5\n");
  EXPECT_THROW(ReadGraph(is), std::runtime_error);
}

TEST(Serialize, RejectsMalformedNumbers) {
  std::istringstream is("pubsub-graph v1\nnodes 2\nedges 1\n0 1 abc\n");
  EXPECT_THROW(ReadGraph(is), std::runtime_error);
  std::istringstream is2("pubsub-clustering v1\ngroups 2\ncells 1\n9\n");
  EXPECT_THROW(ReadClustering(is2), std::runtime_error);
}

TEST(Serialize, IgnoresCommentsAndBlankLines) {
  std::istringstream is(
      "# a comment\n\npubsub-graph v1\n# another\nnodes 2\nedges 1\n0 1 2.5\n");
  const Graph g = ReadGraph(is);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.edge(0).cost, 2.5);
}

TEST(Serialize, FileHelpersRoundTrip) {
  const std::string path = "/tmp/pubsub_serialize_test.txt";
  SaveToFile(path, "hello\nworld\n");
  EXPECT_EQ(LoadFromFile(path), "hello\nworld\n");
  EXPECT_THROW(LoadFromFile("/nonexistent/dir/file"), std::runtime_error);
}

}  // namespace
}  // namespace pubsub
