#include "io/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/scenario.h"

namespace pubsub {
namespace {

template <typename T, typename WriteFn, typename ReadFn>
T RoundTrip(const T& value, WriteFn write, ReadFn read) {
  std::ostringstream os;
  write(os, value);
  std::istringstream is(os.str());
  return read(is);
}

TEST(Serialize, GraphRoundTrip) {
  Rng rng(1);
  const TransitStubNetwork net = GenerateTransitStub(PaperNet100(), rng);
  const Graph& g = net.graph;
  const Graph back = RoundTrip(g, WriteGraph, ReadGraph);
  ASSERT_EQ(back.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back.edge(e).u, g.edge(e).u);
    EXPECT_EQ(back.edge(e).v, g.edge(e).v);
    EXPECT_EQ(back.edge(e).cost, g.edge(e).cost);
  }
}

TEST(Serialize, TransitStubRoundTrip) {
  Rng rng(2);
  const TransitStubNetwork net = GenerateTransitStub(PaperNetSection5(), rng);
  const TransitStubNetwork back = RoundTrip(net, WriteTransitStub, ReadTransitStub);
  EXPECT_EQ(back.graph.num_nodes(), net.graph.num_nodes());
  EXPECT_EQ(back.graph.num_edges(), net.graph.num_edges());
  EXPECT_EQ(back.num_stubs, net.num_stubs);
  EXPECT_EQ(back.transit_nodes, net.transit_nodes);
  EXPECT_EQ(back.stub_of_node, net.stub_of_node);
  EXPECT_EQ(back.block_of_node, net.block_of_node);
  EXPECT_EQ(back.block_of_stub, net.block_of_stub);
  EXPECT_EQ(back.stub_members, net.stub_members);
}

TEST(Serialize, WorkloadRoundTripPreservesUnboundedEnds) {
  Rng rng(3);
  const TransitStubNetwork net = GenerateTransitStub(PaperNet100(), rng);
  Section3Params params;  // regional dim can be the full (unbounded) domain
  params.regionalism = 0.5;
  Rng wrng(4);
  Workload wl = GenerateSection3Subscriptions(net, 200, params, wrng);
  // Inject a genuinely unbounded rectangle.
  wl.subscribers[0].interest = Rect({Interval::All(), Interval::AtMost(5),
                                     Interval::GreaterThan(2), Interval(1, 2)});

  const Workload back = RoundTrip(wl, WriteWorkload, ReadWorkload);
  ASSERT_EQ(back.subscribers.size(), wl.subscribers.size());
  EXPECT_EQ(back.space.dims(), wl.space.dims());
  for (std::size_t d = 0; d < wl.space.dims(); ++d) {
    EXPECT_EQ(back.space.dim(d).name, wl.space.dim(d).name);
    EXPECT_EQ(back.space.dim(d).domain_size, wl.space.dim(d).domain_size);
  }
  for (std::size_t i = 0; i < wl.subscribers.size(); ++i) {
    EXPECT_EQ(back.subscribers[i].node, wl.subscribers[i].node);
    EXPECT_EQ(back.subscribers[i].interest, wl.subscribers[i].interest);
  }
}

TEST(Serialize, WorkloadRoundTripExactDoubles) {
  Workload wl;
  wl.space = EventSpace({{"x", 21}});
  Subscriber s;
  s.node = 0;
  s.interest = Rect({Interval(0.1 + 0.2, 19.999999999999996)});
  wl.subscribers.push_back(s);
  const Workload back = RoundTrip(wl, WriteWorkload, ReadWorkload);
  EXPECT_EQ(back.subscribers[0].interest[0].lo(), 0.1 + 0.2);
  EXPECT_EQ(back.subscribers[0].interest[0].hi(), 19.999999999999996);
}

TEST(Serialize, ClusteringRoundTrip) {
  ClusteringFile c;
  c.num_groups = 5;
  c.assignment = {0, 4, 2, -1, 1, 0};
  c.cells_fed = c.assignment.size();
  const ClusteringFile back = RoundTrip(c, WriteClustering, ReadClustering);
  EXPECT_EQ(back.num_groups, c.num_groups);
  EXPECT_EQ(back.cells_fed, c.cells_fed);
  EXPECT_EQ(back.assignment, c.assignment);
}

TEST(Serialize, RejectsBadMagic) {
  std::istringstream is("not-a-pubsub-file\n");
  EXPECT_THROW(ReadGraph(is), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedInput) {
  std::istringstream is("pubsub-graph v1\nnodes 3\nedges 2\n0 1 1.5\n");
  EXPECT_THROW(ReadGraph(is), std::runtime_error);
}

TEST(Serialize, RejectsOutOfRangeEdge) {
  std::istringstream is("pubsub-graph v1\nnodes 2\nedges 1\n0 7 1.5\n");
  EXPECT_THROW(ReadGraph(is), std::runtime_error);
}

TEST(Serialize, RejectsMalformedNumbers) {
  std::istringstream is("pubsub-graph v1\nnodes 2\nedges 1\n0 1 abc\n");
  EXPECT_THROW(ReadGraph(is), std::runtime_error);
  std::istringstream is2("pubsub-clustering v1\ngroups 2\ncells 1\n9\n");
  EXPECT_THROW(ReadClustering(is2), std::runtime_error);
}

TEST(Serialize, IgnoresCommentsAndBlankLines) {
  std::istringstream is(
      "# a comment\n\npubsub-graph v1\n# another\nnodes 2\nedges 1\n0 1 2.5\n");
  const Graph g = ReadGraph(is);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.edge(0).cost, 2.5);
}

BrokerSnapshot MakeBrokerSnapshot() {
  BrokerSnapshot snap;
  snap.seq = 42;
  snap.workload.space = EventSpace({{"x", 21}, {"y", 11}});
  Subscriber s;
  s.node = 3;
  s.interest = Rect({Interval(0.5, 7.25), Interval::AtMost(4.0)});
  snap.workload.subscribers.push_back(s);
  s.node = 1;  // tombstoned slot: empty interest must survive the trip
  s.interest = Rect(std::vector<Interval>(2, Interval()));
  snap.workload.subscribers.push_back(s);
  snap.num_groups = 4;
  snap.assignment = {0, 3, -1, 2};
  snap.cells_fed = snap.assignment.size();
  snap.churn_since_full_build = 9;
  snap.queue_state = {0.0, 0.1 + 0.2, 123.456};
  std::uint64_t n = 100;
  for (std::uint64_t* field :
       {&snap.stats.commands_applied, &snap.stats.subscribes,
        &snap.stats.unsubscribes, &snap.stats.updates, &snap.stats.publishes,
        &snap.stats.events_matched, &snap.stats.multicast_events,
        &snap.stats.unicast_events, &snap.stats.messages_emitted,
        &snap.stats.wasted_deliveries, &snap.stats.refreshes,
        &snap.stats.full_rebuilds, &snap.stats.journal_bytes,
        &snap.stats.snapshot_bytes, &snap.stats.replayed_records,
        &snap.stats.journal_flush_failures, &snap.stats.journal_flush_retries,
        &snap.stats.degraded_entries, &snap.stats.mutations_rejected})
    *field = n++;  // every counter distinct: field-order bugs can't cancel
  // Covering image: an indexed parent with a covered child and a free slot,
  // with rider/child lists in deliberately non-sorted order — the format
  // must preserve them verbatim.
  CoveringEntryState parent;
  parent.id = 0;
  parent.rect = Rect({Interval(0.5, 7.25), Interval::AtMost(4.0)});
  parent.parent = -1;
  parent.subs = {3, 0};
  parent.children = {1};
  CoveringEntryState child;
  child.id = 1;
  child.rect = Rect({Interval(1.0, 2.0), Interval(1.5, 3.5)});
  child.parent = 0;
  child.subs = {2};
  snap.covering.entries = {parent, child};
  snap.covering.free_list = {2};
  return snap;
}

TEST(Serialize, BrokerSnapshotRoundTrip) {
  const BrokerSnapshot snap = MakeBrokerSnapshot();
  const BrokerSnapshot back =
      RoundTrip(snap, WriteBrokerSnapshot, ReadBrokerSnapshot);
  EXPECT_EQ(back.seq, snap.seq);
  EXPECT_EQ(back.num_groups, snap.num_groups);
  EXPECT_EQ(back.cells_fed, snap.cells_fed);
  EXPECT_EQ(back.assignment, snap.assignment);
  EXPECT_EQ(back.churn_since_full_build, snap.churn_since_full_build);
  EXPECT_EQ(back.queue_state, snap.queue_state);  // exact doubles
  EXPECT_EQ(back.stats, snap.stats);
  ASSERT_EQ(back.workload.subscribers.size(), snap.workload.subscribers.size());
  for (std::size_t i = 0; i < snap.workload.subscribers.size(); ++i) {
    EXPECT_EQ(back.workload.subscribers[i].node,
              snap.workload.subscribers[i].node);
    EXPECT_EQ(back.workload.subscribers[i].interest,
              snap.workload.subscribers[i].interest);
  }
  ASSERT_EQ(back.covering.entries.size(), snap.covering.entries.size());
  for (std::size_t i = 0; i < snap.covering.entries.size(); ++i) {
    EXPECT_EQ(back.covering.entries[i].id, snap.covering.entries[i].id);
    EXPECT_EQ(back.covering.entries[i].rect, snap.covering.entries[i].rect);
    EXPECT_EQ(back.covering.entries[i].parent,
              snap.covering.entries[i].parent);
    EXPECT_EQ(back.covering.entries[i].subs, snap.covering.entries[i].subs);
    EXPECT_EQ(back.covering.entries[i].children,
              snap.covering.entries[i].children);
  }
  EXPECT_EQ(back.covering.free_list, snap.covering.free_list);
}

TEST(Serialize, BrokerSnapshotRejectsVersionSkewAndDamage) {
  std::ostringstream os;
  WriteBrokerSnapshot(os, MakeBrokerSnapshot());
  const std::string full = os.str();

  // A future format version must be rejected, not mis-parsed.
  std::string skewed = full;
  skewed.replace(skewed.find("pubsub-broker-snapshot v3"),
                 std::string("pubsub-broker-snapshot v3").size(),
                 "pubsub-broker-snapshot v4");
  std::istringstream skew_is(skewed);
  EXPECT_THROW(ReadBrokerSnapshot(skew_is), std::runtime_error);

  // Too few stats counters (a stale writer) is a hard error.
  std::string short_stats = full;
  const std::size_t stats_pos = short_stats.find("stats ");
  const std::size_t stats_end = short_stats.find('\n', stats_pos);
  const std::size_t last_space = short_stats.rfind(' ', stats_end);
  short_stats.erase(last_space, stats_end - last_space);
  std::istringstream short_is(short_stats);
  EXPECT_THROW(ReadBrokerSnapshot(short_is), std::runtime_error);

  // Negative counters are rejected.
  std::string negative = full;
  negative.replace(negative.find("seq 42"), 6, "seq -2");
  std::istringstream neg_is(negative);
  EXPECT_THROW(ReadBrokerSnapshot(neg_is), std::runtime_error);
}

TEST(Serialize, BrokerSnapshotReadsV1WithZeroFilledDurability) {
  // A pre-durability (v1) snapshot carries 15 stats fields; the reader
  // must accept it and zero-fill the four durability counters.  The
  // trailing covering section the v3 writer emits is simply never read
  // by the v1 path, matching a genuine v1 file that ends after the
  // clustering record.
  const BrokerSnapshot snap = MakeBrokerSnapshot();
  std::ostringstream os;
  WriteBrokerSnapshot(os, snap);
  std::string v1 = os.str();
  v1.replace(v1.find("pubsub-broker-snapshot v3"),
             std::string("pubsub-broker-snapshot v3").size(),
             "pubsub-broker-snapshot v1");
  const std::size_t stats_pos = v1.find("stats ");
  std::size_t stats_end = v1.find('\n', stats_pos);
  for (int i = 0; i < 4; ++i)  // drop the four v2-only trailing counters
    stats_end = v1.rfind(' ', stats_end - 1);
  v1.erase(stats_end, v1.find('\n', stats_pos) - stats_end);

  std::istringstream is(v1);
  const BrokerSnapshot back = ReadBrokerSnapshot(is);
  EXPECT_EQ(back.seq, snap.seq);
  EXPECT_EQ(back.stats.replayed_records, snap.stats.replayed_records);
  EXPECT_EQ(back.stats.journal_flush_failures, 0u);
  EXPECT_EQ(back.stats.journal_flush_retries, 0u);
  EXPECT_EQ(back.stats.degraded_entries, 0u);
  EXPECT_EQ(back.stats.mutations_rejected, 0u);
  EXPECT_EQ(back.assignment, snap.assignment);
  EXPECT_TRUE(back.covering.entries.empty());  // pre-covering format
  EXPECT_TRUE(back.covering.free_list.empty());
}

TEST(Serialize, BrokerSnapshotReadsV2WithoutCovering) {
  // A pre-covering (v2) snapshot ends after the clustering record; the
  // reader must accept it and leave the covering image empty so a restore
  // rebuilds the table from the workload.
  const BrokerSnapshot snap = MakeBrokerSnapshot();
  std::ostringstream os;
  WriteBrokerSnapshot(os, snap);
  std::string v2 = os.str();
  v2.replace(v2.find("pubsub-broker-snapshot v3"),
             std::string("pubsub-broker-snapshot v3").size(),
             "pubsub-broker-snapshot v2");
  v2.erase(v2.find("pubsub-covering"));  // a genuine v2 file has no covering

  std::istringstream is(v2);
  const BrokerSnapshot back = ReadBrokerSnapshot(is);
  EXPECT_EQ(back.seq, snap.seq);
  EXPECT_EQ(back.stats, snap.stats);
  EXPECT_TRUE(back.covering.entries.empty());
  EXPECT_TRUE(back.covering.free_list.empty());
}

TEST(Serialize, BrokerSnapshotRejectsDamagedCovering) {
  std::ostringstream os;
  WriteBrokerSnapshot(os, MakeBrokerSnapshot());
  const std::string full = os.str();

  // Wrong covering magic/version.
  std::string skewed = full;
  skewed.replace(skewed.find("pubsub-covering v1"),
                 std::string("pubsub-covering v1").size(),
                 "pubsub-covering v2");
  std::istringstream skew_is(skewed);
  EXPECT_THROW(ReadBrokerSnapshot(skew_is), std::runtime_error);

  // A negative rider id inside an entry record is rejected.
  std::string negative = full;
  const std::size_t entry_pos = negative.find("entry 0");
  const std::size_t subs_pos = negative.find('\n', entry_pos) + 1;
  negative.replace(subs_pos, 1, "-3");  // first rider line ("3" -> "-3")
  std::istringstream neg_is(negative);
  EXPECT_THROW(ReadBrokerSnapshot(neg_is), std::runtime_error);

  // Truncation inside the covering section is rejected.
  std::string truncated = full.substr(0, full.find("entry 1"));
  std::istringstream trunc_is(truncated);
  EXPECT_THROW(ReadBrokerSnapshot(trunc_is), std::runtime_error);
}

std::vector<JournalRecord> SampleJournal() {
  std::vector<JournalRecord> recs(4);
  recs[0].seq = 1;
  recs[0].cmd.type = BrokerCommandType::kSubscribe;
  recs[0].cmd.time_ms = 0.125;
  recs[0].cmd.node = 7;
  recs[0].cmd.interest = Rect({Interval::All(), Interval::AtMost(3.5)});
  recs[1].seq = 2;
  recs[1].cmd.type = BrokerCommandType::kUpdate;
  recs[1].cmd.time_ms = 1.5;
  recs[1].cmd.subscriber = 0;
  recs[1].cmd.interest = Rect({Interval(0.1 + 0.2, 5.0), Interval::GreaterThan(2.0)});
  recs[2].seq = 3;
  recs[2].cmd.type = BrokerCommandType::kUnsubscribe;
  recs[2].cmd.time_ms = 2.25;
  recs[2].cmd.subscriber = 4;
  recs[3].seq = 4;
  recs[3].cmd.type = BrokerCommandType::kPublish;
  recs[3].cmd.time_ms = 3.75;
  recs[3].cmd.node = 2;
  recs[3].cmd.point = {1.25, 19.999999999999996};
  return recs;
}

std::string JournalText(const std::vector<JournalRecord>& recs,
                        std::size_t dims) {
  std::ostringstream os;
  WriteJournalHeader(os, dims);
  for (const JournalRecord& rec : recs) WriteJournalRecord(os, rec, dims);
  return os.str();
}

TEST(Serialize, JournalRoundTrip) {
  const std::vector<JournalRecord> recs = SampleJournal();
  std::istringstream is(JournalText(recs, 2));
  const JournalFile jf = ReadJournal(is);
  EXPECT_EQ(jf.dims, 2u);
  ASSERT_EQ(jf.records.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(jf.records[i].seq, recs[i].seq);
    EXPECT_EQ(jf.records[i].cmd.type, recs[i].cmd.type);
    EXPECT_EQ(jf.records[i].cmd.time_ms, recs[i].cmd.time_ms);
  }
  EXPECT_EQ(jf.records[0].cmd.node, 7);
  EXPECT_EQ(jf.records[0].cmd.interest, recs[0].cmd.interest);  // unbounded
  EXPECT_EQ(jf.records[1].cmd.interest, recs[1].cmd.interest);  // exact lo
  EXPECT_EQ(jf.records[2].cmd.subscriber, 4);
  EXPECT_EQ(jf.records[3].cmd.point, recs[3].cmd.point);
}

TEST(Serialize, JournalRejectsBadSequences) {
  std::vector<JournalRecord> gap = SampleJournal();
  gap[2].seq = 5;  // 1, 2, 5: lost updates
  std::istringstream gap_is(JournalText(gap, 2));
  EXPECT_THROW(ReadJournal(gap_is), std::runtime_error);

  std::vector<JournalRecord> dup = SampleJournal();
  dup[1].seq = 1;  // 1, 1: duplicated command
  std::istringstream dup_is(JournalText(dup, 2));
  EXPECT_THROW(ReadJournal(dup_is), std::runtime_error);

  std::vector<JournalRecord> zero = SampleJournal();
  zero[0].seq = 0;  // sequence numbers start at 1
  std::istringstream zero_is(JournalText(zero, 2));
  EXPECT_THROW(ReadJournal(zero_is), std::runtime_error);
}

TEST(Serialize, JournalRejectsVersionSkewAndDamage) {
  const std::string full = JournalText(SampleJournal(), 2);

  std::string skewed = full;
  skewed.replace(skewed.find("v1"), 2, "v2");
  std::istringstream skew_is(skewed);
  EXPECT_THROW(ReadJournal(skew_is), std::runtime_error);

  // A torn final line — the classic crash-mid-append artifact — fails on
  // its field count instead of inventing a command.  (A cut *within* a
  // numeric token can still parse as a shorter valid number; the field
  // count is what guards a lost token.)
  std::istringstream torn(full + "5 4.5 pub 2 1.25\n");  // coordinate lost
  EXPECT_THROW(ReadJournal(torn), std::runtime_error);
  std::istringstream headless(full.substr(0, 10));
  EXPECT_THROW(ReadJournal(headless), std::runtime_error);

  // Unknown command types and bad timestamps are rejected.
  std::istringstream unknown(
      "pubsub-journal v1\ndims 2\n1 0.5 frobnicate 3\n");
  EXPECT_THROW(ReadJournal(unknown), std::runtime_error);
  std::istringstream negative_time("pubsub-journal v1\ndims 2\n1 -4 unsub 3\n");
  EXPECT_THROW(ReadJournal(negative_time), std::runtime_error);
  std::istringstream inf_time("pubsub-journal v1\ndims 2\n1 inf unsub 3\n");
  EXPECT_THROW(ReadJournal(inf_time), std::runtime_error);
}

// Journal failures carry distinct error codes, because they demand distinct
// operator responses: a torn tail is dropped and recovery proceeds, while a
// gap or interior damage means lost updates (docs/OPERATIONS.md).
TEST(Serialize, JournalErrorCodesDistinguishFailures) {
  const std::string full = JournalText(SampleJournal(), 2);
  const auto code_of = [](const std::string& text) {
    std::istringstream is(text);
    try {
      ReadJournal(is);
    } catch (const JournalError& e) {
      return e.code();
    }
    throw std::logic_error("expected a JournalError");
  };

  // Truncation of the final line (no trailing newline) is a torn tail —
  // whether the prefix still parses as a record or not.
  EXPECT_EQ(code_of(full.substr(0, full.size() - 1)),
            JournalErrorCode::kTornTail);
  // Cut deep enough to lose a whole field, so the line cannot parse.
  EXPECT_EQ(code_of(full.substr(0, full.size() - 21)),
            JournalErrorCode::kTornTail);

  // The same damage on a newline-terminated line is interior corruption.
  EXPECT_EQ(code_of(full.substr(0, full.size() - 21) + "\n"),
            JournalErrorCode::kMalformedRecord);

  // A terminated record with a skipped sequence number is lost updates.
  std::vector<JournalRecord> gap = SampleJournal();
  gap[3].seq = 9;
  EXPECT_EQ(code_of(JournalText(gap, 2)), JournalErrorCode::kSeqGap);

  // Header damage is its own class.
  EXPECT_EQ(code_of("pubsub-journal v9\ndims 2\n"),
            JournalErrorCode::kBadHeader);

  // The code name appears in what(), so a bare log line still classifies.
  try {
    std::istringstream is(full.substr(0, full.size() - 1));
    ReadJournal(is);
    FAIL() << "expected JournalError";
  } catch (const JournalError& e) {
    EXPECT_NE(std::string(e.what()).find("torn-tail"), std::string::npos);
    EXPECT_GT(e.line_no(), 0);
  }
}

TEST(Serialize, LenientJournalReadDropsOnlyTheTornTail) {
  const std::string full = JournalText(SampleJournal(), 2);

  // Torn mid-record: the damaged line is dropped, complete records survive.
  std::istringstream torn(full.substr(0, full.size() - 21));
  const JournalReadResult a = ReadJournalLenient(torn);
  EXPECT_TRUE(a.torn_tail);
  EXPECT_EQ(a.journal.records.size(), 3u);
  EXPECT_FALSE(a.tail_error.empty());

  // Torn exactly at the newline: the final line parses, but without its
  // terminator it may be a prefix of a longer record — dropped regardless.
  std::istringstream clean_cut(full.substr(0, full.size() - 1));
  const JournalReadResult b = ReadJournalLenient(clean_cut);
  EXPECT_TRUE(b.torn_tail);
  EXPECT_EQ(b.journal.records.size(), 3u);

  // No damage: nothing dropped.
  std::istringstream whole(full);
  const JournalReadResult c = ReadJournalLenient(whole);
  EXPECT_FALSE(c.torn_tail);
  EXPECT_EQ(c.journal.records.size(), 4u);

  // Interior damage and gaps still throw even leniently.
  std::vector<JournalRecord> gap = SampleJournal();
  gap[2].seq = 7;
  std::istringstream gap_is(JournalText(gap, 2));
  EXPECT_THROW(ReadJournalLenient(gap_is), JournalError);
}

TEST(Serialize, FileHelpersRoundTrip) {
  const std::string path = "/tmp/pubsub_serialize_test.txt";
  SaveToFile(path, "hello\nworld\n");
  EXPECT_EQ(LoadFromFile(path), "hello\nworld\n");
  EXPECT_THROW(LoadFromFile("/nonexistent/dir/file"), std::runtime_error);
}

}  // namespace
}  // namespace pubsub
