#include <gtest/gtest.h>

#include <random>

#include "net/graph.h"
#include "net/spanning.h"

namespace pubsub {
namespace {

double TreeCost(const Graph& g, const std::vector<EdgeId>& tree) {
  double total = 0;
  for (const EdgeId e : tree) total += g.edge(e).cost;
  return total;
}

TEST(KruskalMst, KnownSmallGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(0, 3, 10.0);
  g.add_edge(0, 2, 2.5);
  const auto tree = KruskalMst(g);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(TreeCost(g, tree), 6.0);  // 1 + 2 + 3
}

TEST(KruskalMst, ThrowsOnDisconnected) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(KruskalMst(g), std::invalid_argument);
}

TEST(PrimMstMetric, KnownTriangle) {
  const double d[3][3] = {{0, 1, 4}, {1, 0, 2}, {4, 2, 0}};
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  const double total = PrimMstMetric(
      3, [&d](std::size_t i, std::size_t j) { return d[i][j]; }, &edges);
  EXPECT_EQ(total, 3.0);
  EXPECT_EQ(edges.size(), 2u);
}

TEST(PrimMstMetric, DegenerateSizes) {
  EXPECT_EQ(PrimMstMetric(0, [](std::size_t, std::size_t) { return 1.0; }), 0.0);
  EXPECT_EQ(PrimMstMetric(1, [](std::size_t, std::size_t) { return 1.0; }), 0.0);
}

// Property: Prim on the metric closure of a complete graph equals Kruskal
// on the same graph materialized explicitly.
class MstEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(MstEquivalenceTest, PrimMatchesKruskalOnRandomCompleteGraphs) {
  std::mt19937_64 rng(GetParam());
  const int n = 3 + static_cast<int>(rng() % 15);
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  Graph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      // Distinct costs so the MST is unique.
      const double c = 1.0 + static_cast<double>(rng() % 100000) / 7.0 +
                       0.0001 * (i * n + j);
      d[i][j] = d[j][i] = c;
      g.add_edge(i, j, c);
    }
  const double prim = PrimMstMetric(
      static_cast<std::size_t>(n),
      [&d](std::size_t i, std::size_t j) { return d[i][j]; });
  const double kruskal = TreeCost(g, KruskalMst(g));
  EXPECT_NEAR(prim, kruskal, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstEquivalenceTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace pubsub
