// Tests for the fail-point registry (util/failpoint) and the injectable
// stream sink built on it (io/file).  The registry is process-global, so
// every test runs under a fixture that clears it on both sides.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "io/file.h"
#include "util/failpoint.h"

namespace pubsub {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Instance().clear(); }
  void TearDown() override { FailPoints::Instance().clear(); }
  FailPoints& fp() { return FailPoints::Instance(); }
};

TEST_F(FailPointTest, InactiveRegistryReturnsOff) {
  EXPECT_FALSE(fp().active());
  const FailPointDecision d = fp().eval("journal.flush");
  EXPECT_EQ(d.action, FailAction::kOff);
  EXPECT_EQ(fp().hits("journal.flush"), 0u);  // fast path: not even counted
}

TEST_F(FailPointTest, ParsesActionAndArg) {
  fp().configure("journal.write=error:7");
  EXPECT_TRUE(fp().active());
  const FailPointDecision d = fp().eval("journal.write");
  EXPECT_EQ(d.action, FailAction::kError);
  EXPECT_EQ(d.arg, 7u);
  // Unarmed sites stay off even while the registry is active.
  EXPECT_EQ(fp().eval("journal.flush").action, FailAction::kOff);
}

TEST_F(FailPointTest, CountBudgetDisarmsAfterFiring) {
  fp().configure("snapshot.write=crash*2");
  EXPECT_EQ(fp().eval("snapshot.write").action, FailAction::kCrash);
  EXPECT_EQ(fp().eval("snapshot.write").action, FailAction::kCrash);
  EXPECT_EQ(fp().eval("snapshot.write").action, FailAction::kOff);
  EXPECT_EQ(fp().hits("snapshot.write"), 3u);
  EXPECT_EQ(fp().fired("snapshot.write"), 2u);
}

TEST_F(FailPointTest, SkipLetsEarlyEvaluationsPass) {
  fp().configure("journal.write=torn:5*1^2");
  EXPECT_EQ(fp().eval("journal.write").action, FailAction::kOff);
  EXPECT_EQ(fp().eval("journal.write").action, FailAction::kOff);
  const FailPointDecision d = fp().eval("journal.write");
  EXPECT_EQ(d.action, FailAction::kTorn);
  EXPECT_EQ(d.arg, 5u);
  EXPECT_EQ(fp().eval("journal.write").action, FailAction::kOff);  // budget spent
}

TEST_F(FailPointTest, OffEntryDisarmsAndListsParse) {
  fp().configure(" journal.flush=error , snapshot.flush=error ;replica.apply=crash");
  EXPECT_EQ(fp().eval("snapshot.flush").action, FailAction::kError);
  fp().configure("snapshot.flush=off,journal.flush=off,replica.apply=off");
  EXPECT_FALSE(fp().active());  // everything disarmed again
}

TEST_F(FailPointTest, ProbabilityIsSeededAndReproducible) {
  const auto run = [this] {
    fp().clear();
    fp().set_seed(42);
    fp().configure("broker.publish.post_journal=crash@0.5");
    int fires = 0;
    for (int i = 0; i < 200; ++i)
      if (fp().eval("broker.publish.post_journal").action != FailAction::kOff)
        ++fires;
    return fires;
  };
  const int a = run();
  const int b = run();
  EXPECT_EQ(a, b);      // same seed, same schedule
  EXPECT_GT(a, 50);     // and actually probabilistic, not all-or-nothing
  EXPECT_LT(a, 150);
}

TEST_F(FailPointTest, MalformedSpecsThrow) {
  EXPECT_THROW(fp().configure("=crash"), std::invalid_argument);
  EXPECT_THROW(fp().configure("journal.flush"), std::invalid_argument);
  EXPECT_THROW(fp().configure("journal.flush=boom"), std::invalid_argument);
  EXPECT_THROW(fp().configure("journal.write=error:x"), std::invalid_argument);
  EXPECT_THROW(fp().configure("journal.write=crash*"), std::invalid_argument);
  EXPECT_THROW(fp().configure("journal.write=crash+"), std::invalid_argument);
  EXPECT_THROW(fp().configure("journal.write=crash+x"), std::invalid_argument);
  EXPECT_THROW(fp().configure("journal.write=crash@1.5"), std::invalid_argument);
  EXPECT_THROW(fp().configure("journal.write=crash@nope"), std::invalid_argument);
}

TEST_F(FailPointTest, SeqGateKeepsSiteDormantUntilReported) {
  fp().configure("journal.write=error*1+40");
  EXPECT_EQ(fp().eval("journal.write").action, FailAction::kOff);  // seq 0
  fp().advance_sequence(39);
  EXPECT_EQ(fp().eval("journal.write").action, FailAction::kOff);
  fp().advance_sequence(40);
  EXPECT_EQ(fp().eval("journal.write").action, FailAction::kError);
  EXPECT_EQ(fp().eval("journal.write").action, FailAction::kOff);  // *1 spent
  EXPECT_EQ(fp().hits("journal.write"), 4u);   // dormant evals still counted
  EXPECT_EQ(fp().fired("journal.write"), 1u);
}

TEST_F(FailPointTest, DormantEvaluationsConsumeNeitherSkipNorCount) {
  fp().configure("snapshot.write=crash*1^1+10");
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(fp().eval("snapshot.write").action, FailAction::kOff);
  fp().advance_sequence(10);
  // The full ^1 skip and *1 budget are still intact after three dormant
  // evaluations — scheduling by seq does not drift with evaluation volume.
  EXPECT_EQ(fp().eval("snapshot.write").action, FailAction::kOff);  // skip
  EXPECT_EQ(fp().eval("snapshot.write").action, FailAction::kCrash);
  EXPECT_EQ(fp().eval("snapshot.write").action, FailAction::kOff);
}

TEST_F(FailPointTest, SequenceIsAPlainStoreNotARunningMax) {
  // Recovery replays from an older seq; the window must track the live
  // position, so reporting a smaller seq re-enters dormancy.
  fp().configure("journal.flush=error+40");
  fp().advance_sequence(50);
  EXPECT_EQ(fp().eval("journal.flush").action, FailAction::kError);
  fp().advance_sequence(10);
  EXPECT_EQ(fp().eval("journal.flush").action, FailAction::kOff);
}

TEST_F(FailPointTest, ClearResetsTheReportedSequence) {
  fp().configure("journal.flush=error+5");
  fp().advance_sequence(7);
  EXPECT_EQ(fp().eval("journal.flush").action, FailAction::kError);
  fp().clear();
  fp().configure("journal.flush=error+5");
  EXPECT_EQ(fp().eval("journal.flush").action, FailAction::kOff) << "seq leaked";
  fp().advance_sequence(5);
  EXPECT_EQ(fp().eval("journal.flush").action, FailAction::kError);
}

TEST_F(FailPointTest, ProbPeelsBeforeSeqSoExponentsSurvive) {
  // '@' is peeled before '+', so a scientific-notation probability keeps
  // its exponent sign instead of being misread as a +SEQ gate.
  fp().configure("journal.flush=error+2@1e+0");
  fp().advance_sequence(2);
  EXPECT_EQ(fp().eval("journal.flush").action, FailAction::kError);
}

TEST_F(FailPointTest, KnownSitesAreSortedAndDescribed) {
  const auto& sites = FailPoints::KnownSites();
  ASSERT_FALSE(sites.empty());
  bool has_flush = false;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_NE(sites[i].description[0], '\0') << sites[i].name;
    if (i > 0)
      EXPECT_LT(std::string(sites[i - 1].name), std::string(sites[i].name));
    if (std::string(sites[i].name) == "journal.flush") has_flush = true;
  }
  EXPECT_TRUE(has_flush);
}

TEST_F(FailPointTest, InjectedCrashIsNotARuntimeError) {
  // Ordinary catch (const std::runtime_error&) blocks must not swallow a
  // simulated process death — that is the whole point of the type.
  static_assert(!std::is_base_of_v<std::runtime_error, InjectedCrash>);
  const InjectedCrash e("journal.write");
  EXPECT_EQ(e.site(), "journal.write");
  EXPECT_NE(std::string(e.what()).find("journal.write"), std::string::npos);
}

TEST_F(FailPointTest, StreamSinkShortWriteAndFsyncError) {
  std::ostringstream os;
  StreamSink sink(os, "journal");
  fp().configure("journal.write=error:3*1");
  EXPECT_EQ(sink.write("abcdef", 6), 3u);  // short write: 3 bytes land
  EXPECT_EQ(sink.write("def", 3), 3u);     // budget spent: retry completes
  EXPECT_EQ(os.str(), "abcdef");
  fp().configure("journal.flush=error*1");
  EXPECT_FALSE(sink.flush());
  EXPECT_TRUE(sink.flush());
}

TEST_F(FailPointTest, StreamSinkTornWriteLandsPrefixThenDies) {
  std::ostringstream os;
  StreamSink sink(os, "journal");
  fp().configure("journal.write=torn:4*1");
  EXPECT_THROW(sink.write("abcdefgh", 8), InjectedCrash);
  EXPECT_EQ(os.str(), "abcd");  // the torn tail a recovery must drop
  fp().configure("journal.write=crash*1");
  EXPECT_THROW(sink.write("xyz", 3), InjectedCrash);
  EXPECT_EQ(os.str(), "abcd");  // crash-before-op: nothing reached the sink
}

TEST_F(FailPointTest, StreamSinkUsesItsSitePrefix) {
  std::ostringstream os;
  StreamSink sink(os, "snapshot");
  fp().configure("journal.write=crash");  // wrong seam: must not fire here
  EXPECT_EQ(sink.write("ok", 2), 2u);
  fp().configure("snapshot.write=crash*1");
  EXPECT_THROW(sink.write("no", 2), InjectedCrash);
  EXPECT_EQ(os.str(), "ok");
}

}  // namespace
}  // namespace pubsub
