// Pins docs/CLI.md to the CLI spec table (util/cli_spec).  The doc embeds
// the full `pubsub_cli help` text in a ```text fence; this test diffs that
// fence byte-for-byte against CliUsageText(), so the doc cannot drift from
// the binary — adding a flag without regenerating the doc is a test
// failure, not a silent gap.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/cli_spec.h"

#ifndef PUBSUB_SOURCE_DIR
#error "tests/CMakeLists.txt must define PUBSUB_SOURCE_DIR"
#endif

namespace pubsub {
namespace {

std::string ReadDoc() {
  const std::string path = std::string(PUBSUB_SOURCE_DIR) + "/docs/CLI.md";
  std::ifstream in(path);
  if (!in) ADD_FAILURE() << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CliDocs, HelpTextMatchesDocFenceByteForByte) {
  const std::string doc = ReadDoc();
  const std::string open = "```text\n";
  const std::size_t begin = doc.find(open);
  ASSERT_NE(begin, std::string::npos) << "docs/CLI.md has no ```text fence";
  const std::size_t body = begin + open.size();
  const std::size_t end = doc.find("```", body);
  ASSERT_NE(end, std::string::npos) << "docs/CLI.md fence is unterminated";
  EXPECT_EQ(doc.substr(body, end - body), CliUsageText())
      << "docs/CLI.md fence is stale; paste the output of `pubsub_cli help`";
}

TEST(CliDocs, EveryCommandHasANarrativeSection) {
  const std::string doc = ReadDoc();
  for (const CliCommand& c : CliCommands())
    EXPECT_NE(doc.find("## `" + c.name + "`"), std::string::npos)
        << "docs/CLI.md is missing a section for " << c.name;
}

TEST(CliSpec, TableIsInternallyConsistent) {
  ASSERT_NE(FindCliCommand("chaos"), nullptr);
  EXPECT_EQ(FindCliCommand("not-a-command"), nullptr);
  EXPECT_THROW(CliFlagNames("not-a-command"), std::out_of_range);

  // Every subcommand accepts the common fault-injection flags.
  for (const CliCommand& c : CliCommands()) {
    bool has_failpoints = false;
    for (const CliFlag& f : c.flags)
      if (f.name == "failpoints") has_failpoints = true;
    EXPECT_TRUE(has_failpoints) << c.name;
  }

  // The usage text mentions every command and every flag.
  const std::string usage = CliUsageText();
  for (const CliCommand& c : CliCommands()) {
    EXPECT_NE(usage.find(c.name), std::string::npos) << c.name;
    for (const CliFlag& f : c.flags)
      EXPECT_NE(usage.find("--" + f.name), std::string::npos)
          << c.name << " --" << f.name;
  }
}

}  // namespace
}  // namespace pubsub
