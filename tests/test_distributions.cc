#include "util/distributions.h"

#include <gtest/gtest.h>

#include <limits>

#include <cmath>
#include <numeric>
#include <vector>

namespace pubsub {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Zipf, PmfSumsToOne) {
  const Zipf z(100, 1.0);
  double total = 0.0;
  for (std::size_t r = 1; r <= 100; ++r) total += z.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, PmfIsDecreasingInRank) {
  const Zipf z(50, 0.8);
  for (std::size_t r = 1; r < 50; ++r) EXPECT_GT(z.pmf(r), z.pmf(r + 1));
}

TEST(Zipf, RankOneDominatesWithLargeExponent) {
  const Zipf z(10, 3.0);
  EXPECT_GT(z.pmf(1), 0.8);
}

TEST(Zipf, SampleFrequenciesMatchPmf) {
  const Zipf z(5, 1.0);
  Rng rng(123);
  std::vector<int> counts(6, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  EXPECT_EQ(counts[0], 0);  // ranks are 1-based
  for (std::size_t r = 1; r <= 5; ++r)
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, z.pmf(r), 0.01);
}

TEST(Zipf, RejectsZeroItems) { EXPECT_THROW(Zipf(0), std::invalid_argument); }

TEST(BoundedPareto, SamplesStayInRange) {
  const BoundedPareto p(2.0, 1.5, 10.0);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = p.sample(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 10.0);
  }
}

TEST(BoundedPareto, EmpiricalMeanMatchesAnalytic) {
  const BoundedPareto p(1.0, 1.2, 50.0);
  Rng rng(9);
  double sum = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) sum += p.sample(rng);
  EXPECT_NEAR(sum / n, p.mean(), 0.05);
}

TEST(BoundedPareto, FromMeanHitsTargetForAlphaAboveOne) {
  const BoundedPareto p = BoundedPareto::FromMean(4.0, 2.0, 1000.0);
  // Truncation at a large cap barely matters; the mean should be close.
  EXPECT_NEAR(p.mean(), 4.0, 0.1);
}

TEST(BoundedPareto, FromMeanBisectsForAlphaOne) {
  const BoundedPareto p = BoundedPareto::FromMean(4.0, 1.0, 21.0);
  EXPECT_NEAR(p.mean(), 4.0, 0.05);
  EXPECT_LE(p.x_m(), 4.0);
}

TEST(BoundedPareto, RejectsInvalidParameters) {
  EXPECT_THROW(BoundedPareto(0.0, 1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.0, -1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(5.0, 1.0, 4.0), std::invalid_argument);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalCdf(10.0, 10.0, 2.0), 0.5, 1e-12);
}

TEST(NormalCdf, DegenerateSigmaIsStep) {
  EXPECT_EQ(NormalCdf(0.9, 1.0, 0.0), 0.0);
  EXPECT_EQ(NormalCdf(1.0, 1.0, 0.0), 1.0);
  EXPECT_EQ(NormalCdf(1.1, 1.0, 0.0), 1.0);
}

TEST(GaussianMixture, SingleModeIntervalMass) {
  const GaussianMixture1D m = GaussianMixture1D::Single(0.0, 1.0);
  EXPECT_NEAR(m.interval_mass(-1.0, 1.0), 0.6827, 1e-3);
  EXPECT_NEAR(m.interval_mass(-kInf, kInf), 1.0, 1e-12);
  EXPECT_EQ(m.interval_mass(1.0, 1.0), 0.0);
  EXPECT_EQ(m.interval_mass(2.0, 1.0), 0.0);
}

TEST(GaussianMixture, WeightsNormalize) {
  const GaussianMixture1D m({{2.0, -5.0, 1.0}, {2.0, 5.0, 1.0}});
  EXPECT_NEAR(m.interval_mass(-kInf, 0.0), 0.5, 1e-6);
  EXPECT_NEAR(m.interval_mass(-kInf, kInf), 1.0, 1e-12);
}

TEST(GaussianMixture, SampleMatchesModeProportions) {
  const GaussianMixture1D m({{0.3, -100.0, 0.1}, {0.7, 100.0, 0.1}});
  Rng rng(5);
  int high = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (m.sample(rng) > 0) ++high;
  EXPECT_NEAR(static_cast<double>(high) / n, 0.7, 0.01);
}

TEST(GaussianMixture, RejectsEmptyAndNegative) {
  EXPECT_THROW(GaussianMixture1D(std::vector<GaussianMode>{}), std::invalid_argument);
  EXPECT_THROW(GaussianMixture1D({GaussianMode{-1.0, 0.0, 1.0}}), std::invalid_argument);
}

TEST(UniformInt1D, IntervalMassCountsLatticePoints) {
  const UniformInt1D u(10);  // values 0..9
  EXPECT_NEAR(u.interval_mass(-1.0, 9.0), 1.0, 1e-12);
  EXPECT_NEAR(u.interval_mass(-0.5, 0.5), 0.1, 1e-12);  // just value 0
  EXPECT_NEAR(u.interval_mass(2.0, 5.0), 0.3, 1e-12);   // 3, 4, 5
  EXPECT_EQ(u.interval_mass(9.0, 20.0), 0.0);
  EXPECT_EQ(u.interval_mass(5.0, 5.0), 0.0);
}

TEST(Discrete, SamplesMatchWeights) {
  const Discrete d({1.0, 3.0, 6.0});
  EXPECT_NEAR(d.pmf(0), 0.1, 1e-12);
  EXPECT_NEAR(d.pmf(1), 0.3, 1e-12);
  EXPECT_NEAR(d.pmf(2), 0.6, 1e-12);
  Rng rng(77);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[d.sample(rng)];
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, d.pmf(i), 0.01);
}

TEST(Discrete, RejectsBadWeights) {
  EXPECT_THROW(Discrete({}), std::invalid_argument);
  EXPECT_THROW(Discrete({1.0, -2.0}), std::invalid_argument);
  EXPECT_THROW(Discrete({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  const Rng base(42);
  Rng a = base.split(1);
  Rng b = base.split(2);
  Rng a2 = base.split(1);
  EXPECT_EQ(a(), a2());
  // Different salts should give different streams (overwhelmingly likely).
  Rng a3 = base.split(1);
  (void)a3();
  EXPECT_NE(a3(), Rng(base.split(2))());
}

}  // namespace
}  // namespace pubsub
