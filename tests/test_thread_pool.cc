#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "util/flags.h"

namespace pubsub {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    for (const std::size_t n : {0u, 1u, 2u, 7u, 64u, 1001u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(
          n,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          },
          /*min_parallel=*/1);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ThreadPool, ChunkBoundariesArePureFunctionOfInput) {
  // Lane t must always own the same contiguous chunk: record chunk edges
  // across repeated runs and require identical partitions.
  ThreadPool pool(4);
  const std::size_t n = 103;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> runs;
  for (int rep = 0; rep < 3; ++rep) {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> seen;
    pool.parallel_for(
        n,
        [&](std::size_t begin, std::size_t end) {
          std::lock_guard<std::mutex> lock(mu);
          seen.emplace_back(begin, end);
        },
        /*min_parallel=*/1);
    std::sort(seen.begin(), seen.end());
    runs.push_back(std::move(seen));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[1], runs[2]);
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  // Order must be exactly 0..n-1 (single chunk on the calling thread).
  std::vector<std::size_t> order;
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) order.push_back(i);
  });
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, SmallRangesRunInline) {
  ThreadPool pool(8);
  std::vector<int> hits(3, 0);  // unsynchronized: must not run concurrently
  pool.parallel_for(
      3,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      },
      /*min_parallel=*/100);
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(
      4,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          // Would deadlock if the inner call dispatched to the same pool.
          pool.parallel_for(8, [&](std::size_t b, std::size_t e) {
            total.fetch_add(static_cast<int>(e - b));
          });
      },
      /*min_parallel=*/1);
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ResizeReusableAcrossJobs) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  auto body = [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  };
  pool.parallel_for(100, body, 1);
  pool.set_num_threads(5);
  EXPECT_EQ(pool.num_threads(), 5);
  pool.parallel_for(100, body, 1);
  pool.set_num_threads(1);
  pool.parallel_for(100, body, 1);
  EXPECT_EQ(count.load(), 300);
}

TEST(ThreadPool, ResizeAfterManyJobsSpawnsQuiescentWorkers) {
  // Regression: workers spawned by a resize once started with a zero
  // generation counter while the pool's counter kept its pre-resize value,
  // so they woke immediately and executed a stale (null) job.  Interleave
  // many jobs with resizes to exercise that path.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  auto body = [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  };
  for (int rep = 0; rep < 50; ++rep) {
    pool.parallel_for(64, body, 1);
    pool.set_num_threads(rep % 2 ? 7 : 4);
  }
  EXPECT_EQ(count.load(), 50 * 64);
}

TEST(ThreadPool, ParallelForHelperUsesGlobalPool) {
  ThreadPool::global().set_num_threads(3);
  std::vector<int> slot(257, 0);
  ParallelFor(slot.size(), [&](std::size_t i) { slot[i] = static_cast<int>(i); }, 1);
  for (std::size_t i = 0; i < slot.size(); ++i)
    ASSERT_EQ(slot[i], static_cast<int>(i));
  ThreadPool::global().set_num_threads(1);
}

TEST(ThreadPool, ConfigureThreadsFromFlagsParsesAndClamps) {
  {
    const char* argv[] = {"prog", "--threads=3"};
    EXPECT_EQ(ConfigureThreadsFromFlags(Flags(2, argv)), 3);
    EXPECT_EQ(ThreadPool::global().num_threads(), 3);
  }
  {
    const char* argv[] = {"prog"};
    EXPECT_EQ(ConfigureThreadsFromFlags(Flags(1, argv)), 1);  // default serial
  }
  {
    const char* argv[] = {"prog", "--threads=0"};  // 0 = hardware threads
    EXPECT_GE(ConfigureThreadsFromFlags(Flags(2, argv)), 1);
  }
  ThreadPool::global().set_num_threads(1);
}

}  // namespace
}  // namespace pubsub
