#include <gtest/gtest.h>

#include <random>

#include "net/multicast.h"
#include "net/shortest_path.h"
#include "net/transit_stub.h"

namespace pubsub {
namespace {

// needs <limits> via multicast/shortest_path transitively; star fixture:
// center 0, leaves 1..4, unit costs.
Graph Star() {
  Graph g(5);
  for (int i = 1; i <= 4; ++i) g.add_edge(0, i, 1.0);
  return g;
}

TEST(SparseMode, PublisherAtCorePaysOnlyTheSharedTree) {
  const Graph g = Star();
  SparseModeMulticastCost sparse(g);
  const ShortestPathTree core_spt = Dijkstra(g, 0);
  const std::vector<NodeId> members = {1, 2};
  // Core == publisher: identical to dense-mode from node 0.
  EXPECT_EQ(sparse.cost(core_spt, 0, members), 2.0);
}

TEST(SparseMode, RemotePublisherPaysTheUnicastLeg) {
  const Graph g = Star();
  SparseModeMulticastCost sparse(g);
  const ShortestPathTree core_spt = Dijkstra(g, 0);
  const std::vector<NodeId> members = {1, 2};
  // Publisher at leaf 3: one hop to the core, then the shared tree.
  EXPECT_EQ(sparse.cost(core_spt, 3, members), 1.0 + 2.0);
  // Empty group costs nothing (no message leaves the publisher).
  EXPECT_EQ(sparse.cost(core_spt, 3, std::vector<NodeId>{}), 0.0);
}

TEST(SparseMode, SelectCorePicksTheMedoid) {
  // Line 0-1-2-3-4 with unit costs: the medoid of {0, 2, 4} is 2.
  Graph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1, 1.0);
  const DistanceMatrix dm(g);
  EXPECT_EQ(SparseModeMulticastCost::SelectCore(dm, std::vector<NodeId>{0, 2, 4}), 2);
  EXPECT_EQ(SparseModeMulticastCost::SelectCore(dm, std::vector<NodeId>{3}), 3);
  EXPECT_THROW(SparseModeMulticastCost::SelectCore(dm, std::vector<NodeId>{}),
               std::invalid_argument);
}

TEST(SparseMode, DenseModeWinsPerEventButSharesNoState) {
  // Property on random transit-stub graphs: per-event, dense mode (a tree
  // rooted at the publisher itself) is never more expensive than sparse
  // mode with the same members — sparse mode's saving is router state,
  // not delivery cost.  (Dense = sparse with core == publisher minus the
  // unicast leg.)
  Rng net_rng(11);
  TransitStubParams shape;
  shape.transit_blocks = 2;
  shape.transit_nodes_per_block = 2;
  shape.stubs_per_transit_node = 2;
  shape.nodes_per_stub = 5;
  const TransitStubNetwork net = GenerateTransitStub(shape, net_rng);
  const DistanceMatrix dm(net.graph);
  PrunedSptCost dense(net.graph);
  SparseModeMulticastCost sparse(net.graph);

  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<NodeId> members;
    for (int i = 0; i < 6; ++i)
      members.push_back(static_cast<NodeId>(rng() % net.graph.num_nodes()));
    const NodeId origin = static_cast<NodeId>(rng() % net.graph.num_nodes());

    const NodeId core = SparseModeMulticastCost::SelectCore(dm, members);
    const ShortestPathTree core_spt = Dijkstra(net.graph, core);
    const ShortestPathTree origin_spt = Dijkstra(net.graph, origin);

    const double dense_cost = dense.cost(origin_spt, members);
    const double sparse_cost = sparse.cost(core_spt, origin, members);
    // Dense uses the per-source optimal tree and no unicast leg.  Sparse
    // can tie (publisher near the core) but is typically worse; it must
    // never beat dense by more than numerical noise when the dense tree is
    // the publisher-rooted SPT union... in fact sparse >= pruned SPT from
    // the core alone >= 0, and adding the unicast leg keeps:
    EXPECT_GE(sparse_cost + 1e-9,
              dense.cost(core_spt, members));  // leg is non-negative
    // And a publisher sitting on the core makes the two trees comparable:
    if (origin == core) EXPECT_NEAR(sparse_cost, dense.cost(core_spt, members), 1e-9);
    (void)dense_cost;
  }
}

TEST(SparseMode, SharedTreeIsPublisherIndependent) {
  const Graph g = Star();
  SparseModeMulticastCost sparse(g);
  const ShortestPathTree core_spt = Dijkstra(g, 0);
  const std::vector<NodeId> members = {1, 2, 3};
  // Every leaf publisher pays the same shared-tree part plus its own leg.
  const double from1 = sparse.cost(core_spt, 1, members);
  const double from2 = sparse.cost(core_spt, 2, members);
  EXPECT_EQ(from1, from2);
  EXPECT_EQ(from1, 1.0 + 3.0);
}

}  // namespace
}  // namespace pubsub
