// CI guard for the telemetry tentpole's overhead budget: publish throughput
// with the metrics registry enabled must stay within 5% of a run with the
// registry's master switch off.  Wall-clock based, so it takes the min over
// interleaved trials and is skipped under sanitizers (instrumentation skews
// relative timings far beyond the budget).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "broker/broker.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "workload/stock_model.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PS_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PS_UNDER_SANITIZER 1
#endif

namespace pubsub {
namespace {

TEST(MetricsOverhead, PublishThroughputWithinBudget) {
#ifdef PS_UNDER_SANITIZER
  GTEST_SKIP() << "timing-sensitive; sanitizer instrumentation skews ratios";
#endif
  const Scenario scenario = MakeStockScenario(300, PublicationHotSpots::kOne, 61);
  DeliverySimulator sim(scenario.net.graph, scenario.workload);
  Rng rng(62);
  const std::vector<EventSample> events =
      SampleEvents(sim, *scenario.pub, 200, rng);

  BrokerOptions opts;
  opts.group.num_groups = 12;
  opts.group.max_cells = 800;
  opts.refresh.churn_fraction = 0.0;  // no refreshes: measure the publish path
  opts.refresh.waste_ratio = 0.0;

  const auto publish_seconds = [&](bool metrics_enabled) {
    ManualClock clock;
    Broker broker(scenario.workload, *scenario.pub, scenario.net.graph, opts,
                  &clock);
    broker.metrics().set_enabled(metrics_enabled);
    MetricsRegistry::Default().set_enabled(metrics_enabled);
    StopwatchClock watch;
    for (const EventSample& e : events) {
      clock.advance(1.0);
      broker.publish(e.pub.origin, e.pub.point);
    }
    return watch.elapsed_seconds();
  };

  // Interleave trials so frequency scaling / cache warming hits both arms
  // equally, then compare the minima (the least-disturbed runs).
  constexpr int kTrials = 5;
  double best_on = 1e30;
  double best_off = 1e30;
  publish_seconds(true);  // warm-up run, discarded
  for (int t = 0; t < kTrials; ++t) {
    best_on = std::min(best_on, publish_seconds(true));
    best_off = std::min(best_off, publish_seconds(false));
  }
  MetricsRegistry::Default().set_enabled(true);

  const double ratio = best_on / best_off;
  EXPECT_LE(ratio, 1.05) << "instrumented publish path is " << ratio
                         << "x the registry-disabled baseline (budget 1.05x)";
}

}  // namespace
}  // namespace pubsub
