// Storage subsystem tests: page-file format, free-list reuse, CRC/tag
// detection, torn-tail reopen fuzz, buffer-pool edge cases, degraded-mode
// backoff, and blob stream round trips (docs/STORAGE.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/crc32.h"
#include "storage/page_stream.h"
#include "storage/storage_manager.h"
#include "util/failpoint.h"

namespace pubsub {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<char> Pattern(std::size_t n, unsigned seed) {
  std::vector<char> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<char>((i * 131 + seed * 7 + 3) & 0xFF);
  return v;
}

// Every fail-point test must leave the process-global registry disarmed.
class StorageFailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Instance().clear(); }
  void TearDown() override { FailPoints::Instance().clear(); }
};

TEST(Crc32, KnownAnswerAndChaining) {
  // CRC-32C check value from RFC 3720 ("123456789" -> 0xE3069283).
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(s, 9), 0xE3069283u);
  // Chained partial checksums equal the one-shot checksum.
  EXPECT_EQ(Crc32c(s + 4, 5, Crc32c(s, 4)), Crc32c(s, 9));
  EXPECT_NE(Crc32c(s, 9), Crc32c(s, 8));
}

TEST(MemoryStorage, RoundTripAndFreeListReuse) {
  MemoryStorageManager sm(1024);
  EXPECT_EQ(sm.payload_size(), 1024u - kPageOverhead);
  const PageId a = sm.allocate();
  const PageId b = sm.allocate();
  const PageId c = sm.allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);

  const std::vector<char> pa = Pattern(sm.payload_size(), 1);
  sm.write(a, pa.data());
  std::vector<char> out(sm.payload_size());
  sm.read(a, out.data());
  EXPECT_EQ(out, pa);

  // LIFO free-list reuse: the most recently freed id comes back first, and
  // the file does not grow while the free list is non-empty.
  sm.free_page(a);
  sm.free_page(c);
  EXPECT_EQ(sm.free_count(), 2u);
  EXPECT_EQ(sm.allocate(), c);
  EXPECT_EQ(sm.allocate(), a);
  EXPECT_EQ(sm.free_count(), 0u);
  EXPECT_EQ(sm.allocate(), 3u);
  EXPECT_EQ(sm.page_count(), 4u);

  EXPECT_THROW(sm.read(99, out.data()), StorageError);
  sm.set_meta("hello");
  EXPECT_EQ(sm.meta(), "hello");
  EXPECT_THROW(sm.set_meta(std::string(kMetaCapacity + 1, 'x')),
               std::invalid_argument);
}

TEST(DiskStorage, CreateWriteReadReopen) {
  const std::string path = TempPath("disk_roundtrip.pagefile");
  const std::vector<char> p0 = Pattern(1024 - kPageOverhead, 1);
  const std::vector<char> p1 = Pattern(1024 - kPageOverhead, 2);
  {
    DiskStorageManager::Options opts;
    opts.page_size = 1024;
    auto sm = DiskStorageManager::Create(path, opts);
    EXPECT_EQ(sm->allocate(), 0u);
    EXPECT_EQ(sm->allocate(), 1u);
    sm->write(0, p0.data());
    sm->write(1, p1.data());
    sm->set_meta("tree-of-life");
    sm->flush();
  }
  {
    auto sm = DiskStorageManager::Open(path);
    EXPECT_EQ(sm->page_size(), 1024u);  // geometry comes from the header
    EXPECT_EQ(sm->page_count(), 2u);
    EXPECT_EQ(sm->meta(), "tree-of-life");
    std::vector<char> out(sm->payload_size());
    sm->read(0, out.data());
    EXPECT_EQ(out, p0);
    sm->read(1, out.data());
    EXPECT_EQ(out, p1);
  }
}

TEST(DiskStorage, FreeListSurvivesReopen) {
  const std::string path = TempPath("disk_freelist.pagefile");
  DiskStorageManager::Options opts;
  opts.page_size = 1024;
  const std::vector<char> pay = Pattern(1024 - kPageOverhead, 3);
  {
    auto sm = DiskStorageManager::Create(path, opts);
    for (PageId i = 0; i < 4; ++i) {
      ASSERT_EQ(sm->allocate(), i);
      sm->write(i, pay.data());
    }
    sm->free_page(1);
    sm->free_page(3);
    sm->flush();
  }
  {
    auto sm = DiskStorageManager::Open(path);
    EXPECT_EQ(sm->free_count(), 2u);
    EXPECT_EQ(sm->allocate(), 3u);  // LIFO: last freed, first reused
    EXPECT_EQ(sm->allocate(), 1u);
    EXPECT_EQ(sm->allocate(), 4u);  // then growth
  }
}

TEST(DiskStorage, CrcMismatchDetected) {
  const std::string path = TempPath("disk_crc.pagefile");
  DiskStorageManager::Options opts;
  opts.page_size = 1024;
  const std::vector<char> pay = Pattern(1024 - kPageOverhead, 4);
  {
    auto sm = DiskStorageManager::Create(path, opts);
    sm->allocate();
    sm->write(0, pay.data());
    sm->flush();
  }
  // Flip one payload byte of page 0 (physical offset page_size + overhead).
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(1024 + kPageOverhead + 100);
    const char evil = 'X';
    f.write(&evil, 1);
  }
  auto sm = DiskStorageManager::Open(path);
  std::vector<char> out(sm->payload_size());
  try {
    sm->read(0, out.data());
    FAIL() << "corrupt page read did not throw";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.code(), StorageErrorCode::kCrcMismatch);
    EXPECT_EQ(e.page(), 0u);
  }
}

TEST(DiskStorage, MisdirectedReadDetectedByTag) {
  const std::string path = TempPath("disk_tag.pagefile");
  DiskStorageManager::Options opts;
  opts.page_size = 1024;
  {
    auto sm = DiskStorageManager::Create(path, opts);
    sm->allocate();
    sm->allocate();
    sm->write(0, Pattern(sm->payload_size(), 5).data());
    sm->write(1, Pattern(sm->payload_size(), 6).data());
    sm->flush();
  }
  // Swap the two pages' raw frames: CRCs still verify (each frame is
  // internally consistent) but the tag exposes the misdirection.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    std::vector<char> f0(1024), f1(1024);
    f.seekg(1024);
    f.read(f0.data(), 1024);
    f.seekg(2048);
    f.read(f1.data(), 1024);
    f.seekp(1024);
    f.write(f1.data(), 1024);
    f.seekp(2048);
    f.write(f0.data(), 1024);
  }
  auto sm = DiskStorageManager::Open(path);
  std::vector<char> out(sm->payload_size());
  try {
    sm->read(0, out.data());
    FAIL() << "misdirected read did not throw";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.code(), StorageErrorCode::kBadPage);
  }
}

TEST(DiskStorage, RejectsGarbageAndTinyPages) {
  const std::string path = TempPath("disk_garbage.pagefile");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a page file, but it is longer than nothing";
  }
  try {
    auto sm = DiskStorageManager::Open(path);
    FAIL() << "garbage file opened";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.code(), StorageErrorCode::kBadHeader);
  }
  EXPECT_THROW({ MemoryStorageManager small(64); }, std::invalid_argument);
  DiskStorageManager::Options tiny;
  tiny.page_size = 128;
  EXPECT_THROW(DiskStorageManager::Create(TempPath("tiny.pagefile"), tiny),
               std::invalid_argument);
}

// Reopen-after-crash fuzz: truncate a healthy 4-page file at every byte
// offset across the interesting boundaries and check the typed outcome —
// never garbage data, never an unflagged short read.
TEST(DiskStorage, TornTailReopenFuzzedAtByteOffsets) {
  const std::string path = TempPath("disk_torn.pagefile");
  constexpr std::uint32_t kPage = 1024;
  DiskStorageManager::Options opts;
  opts.page_size = kPage;
  std::vector<std::vector<char>> pays;
  {
    auto sm = DiskStorageManager::Create(path, opts);
    for (PageId i = 0; i < 4; ++i) {
      sm->allocate();
      pays.push_back(Pattern(sm->payload_size(), 10 + i));
      sm->write(i, pays.back().data());
    }
    sm->flush();
  }
  const std::uint64_t full = fs::file_size(path);
  ASSERT_EQ(full, 5u * kPage);  // header + 4 pages

  // Sweep byte offsets around each page boundary plus a few interior cuts.
  std::vector<std::uint64_t> cuts;
  for (std::uint64_t base = 0; base <= full; base += kPage) {
    for (std::int64_t d : {-3, -1, 0, 1, 7}) {
      const std::int64_t c = static_cast<std::int64_t>(base) + d;
      if (c >= 0 && c < static_cast<std::int64_t>(full))
        cuts.push_back(static_cast<std::uint64_t>(c));
    }
  }
  cuts.push_back(kPage + 511);      // mid page 0
  cuts.push_back(3 * kPage + 900);  // mid page 2

  const std::string work = TempPath("disk_torn_cut.pagefile");
  for (const std::uint64_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    fs::copy_file(path, work, fs::copy_options::overwrite_existing);
    fs::resize_file(work, cut);
    if (cut < kPage) {
      // Header itself torn: the file must be rejected as a whole.
      try {
        auto sm = DiskStorageManager::Open(work);
        FAIL() << "torn header accepted";
      } catch (const StorageError& e) {
        EXPECT_EQ(e.code(), StorageErrorCode::kBadHeader);
      }
      continue;
    }
    DiskStorageManager::OpenReport rep;
    auto sm = DiskStorageManager::Open(work, opts, &rep);
    const std::size_t durable = static_cast<std::size_t>(cut / kPage) - 1;
    EXPECT_EQ(sm->page_count(), std::min<std::size_t>(durable, 4));
    EXPECT_EQ(rep.clipped_pages, 4 - sm->page_count());
    std::vector<char> out(sm->payload_size());
    for (PageId i = 0; i < 4; ++i) {
      if (i < sm->page_count()) {
        sm->read(i, out.data());
        EXPECT_EQ(out, pays[i]) << "surviving page corrupted";
      } else {
        EXPECT_THROW(sm->read(i, out.data()), StorageError);
      }
    }
  }
}

TEST(BufferPool, CountsHitsMissesEvictionsExactly) {
  MemoryStorageManager sm(1024);
  BufferPool::Options po;
  po.capacity = 2;
  BufferPool pool(&sm, po);

  const PageId a = pool.allocate();
  pool.unpin(a, true);
  const PageId b = pool.allocate();
  pool.unpin(b, true);
  const PageId c = pool.allocate();  // evicts LRU (a), writes it back
  pool.unpin(c, true);
  EXPECT_EQ(pool.evictions(), 1u);
  EXPECT_EQ(pool.writebacks(), 1u);

  pool.pin(c);  // resident: hit
  pool.unpin(c, false);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 0u);

  pool.pin(a);  // miss: reloads a, evicting b
  pool.unpin(a, false);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.evictions(), 2u);
  EXPECT_EQ(pool.writebacks(), 2u);  // b was dirty

  std::vector<char> out(sm.payload_size());
  sm.read(b, out.data());  // b's eviction persisted its zeroed frame
}

TEST(BufferPool, AllPinnedPoolFailsLoudly) {
  MemoryStorageManager sm(1024);
  BufferPool::Options po;
  po.capacity = 2;
  BufferPool pool(&sm, po);
  const PageId a = pool.allocate();
  const PageId b = pool.allocate();
  // Both frames pinned: the next distinct pin must throw, not deadlock and
  // not silently grow the pool.
  EXPECT_THROW(pool.allocate(), BufferPoolExhaustedError);
  EXPECT_EQ(pool.pinned(), 2u);
  // Re-pinning a resident page is fine (no new frame needed).
  pool.pin(a);
  pool.unpin(a, false);
  pool.unpin(a, true);
  pool.unpin(b, true);
  EXPECT_NO_THROW(pool.allocate());
  EXPECT_THROW(pool.unpin(a, false), std::logic_error);  // not pinned now
  pool.flush();
}

TEST(BufferPool, DirtyWritebackReachesStorageOnFlush) {
  MemoryStorageManager sm(1024);
  BufferPool::Options po;
  po.capacity = 4;
  BufferPool pool(&sm, po);
  const std::vector<char> pay = Pattern(sm.payload_size(), 9);
  PageId id;
  {
    PageRef ref = PageRef::Alloc(pool);
    id = ref.id();
    std::copy(pay.begin(), pay.end(), ref.data());
    ref.set_dirty();
  }
  pool.flush();
  std::vector<char> out(sm.payload_size());
  sm.read(id, out.data());
  EXPECT_EQ(out, pay);
}

TEST(BufferPool, ExportsDeterministicMetrics) {
  MetricsRegistry reg;
  MemoryStorageManager sm(1024);
  BufferPool::Options po;
  po.capacity = 2;
  BufferPool pool(&sm, po, &reg);
  const PageId a = pool.allocate();
  pool.unpin(a, true);
  const PageId b = pool.allocate();
  pool.unpin(b, true);
  pool.allocate();  // eviction
  const MetricsSnapshot snap = reg.scrape(/*include_runtime=*/false);
  bool saw_evictions = false;
  for (const auto& m : snap.samples) {
    if (m.info.name == "storage_pool_evictions_total") {
      saw_evictions = true;
      EXPECT_EQ(m.counter_value, 1u);
    }
  }
  EXPECT_TRUE(saw_evictions);
}

using DiskStorageFailPoints = StorageFailPointTest;

TEST_F(DiskStorageFailPoints, ShortWriteHealedByRetry) {
  const std::string path = TempPath("disk_shortwrite.pagefile");
  DiskStorageManager::Options opts;
  opts.page_size = 1024;
  auto sm = DiskStorageManager::Create(path, opts);
  sm->allocate();
  const std::vector<char> pay = Pattern(sm->payload_size(), 21);
  // One short write of 5 bytes; the page write loop must rewrite the whole
  // frame on retry and succeed.
  FailPoints::Instance().configure("storage.page.write=error:5*1");
  sm->write(0, pay.data());
  EXPECT_EQ(sm->stats().retries, 1u);
  EXPECT_FALSE(sm->degraded());
  sm->flush();
  std::vector<char> out(sm->payload_size());
  sm->read(0, out.data());
  EXPECT_EQ(out, pay);
}

TEST_F(DiskStorageFailPoints, FlushFailureDegradesThenHeals) {
  const std::string path = TempPath("disk_degraded.pagefile");
  ManualClock clock;
  DiskStorageManager::Options opts;
  opts.page_size = 1024;
  opts.flush_retries = 4;
  opts.clock = &clock;
  auto sm = DiskStorageManager::Create(path, opts);
  sm->allocate();
  const std::vector<char> pay = Pattern(sm->payload_size(), 22);
  sm->write(0, pay.data());

  FailPoints::Instance().configure("storage.flush=error*100");
  EXPECT_THROW(sm->flush(), StorageDegradedError);
  EXPECT_TRUE(sm->degraded());
  // Backoff advanced the manual clock deterministically: 1 + 2 + 4 ms for
  // the three retries before the budget of 4 attempts ran out.
  EXPECT_DOUBLE_EQ(clock.now_ms(), 7.0);
  EXPECT_EQ(sm->stats().degraded_entries, 1u);

  // Degraded mode: reads serve, mutations refuse.
  std::vector<char> out(sm->payload_size());
  sm->read(0, out.data());
  EXPECT_EQ(out, pay);
  EXPECT_THROW(sm->write(0, pay.data()), StorageDegradedError);
  EXPECT_THROW(sm->allocate(), StorageDegradedError);
  EXPECT_THROW(sm->flush(), StorageDegradedError);

  // Probe with the fault still armed: stays degraded.
  EXPECT_FALSE(sm->clear_degraded());
  EXPECT_TRUE(sm->degraded());

  // Disarm and re-probe: healthy again, and the interrupted durability
  // point completes.
  FailPoints::Instance().clear();
  EXPECT_TRUE(sm->clear_degraded());
  EXPECT_FALSE(sm->degraded());
  sm->write(0, pay.data());
  sm->flush();
}

TEST_F(DiskStorageFailPoints, CrashAtPageWriteLeavesReopenableFile) {
  const std::string path = TempPath("disk_crash.pagefile");
  DiskStorageManager::Options opts;
  opts.page_size = 1024;
  {
    auto sm = DiskStorageManager::Create(path, opts);
    sm->allocate();
    sm->write(0, Pattern(sm->payload_size(), 23).data());
    sm->flush();
    FailPoints::Instance().configure("storage.page.write=crash*1");
    sm->allocate();
    EXPECT_THROW(sm->write(1, Pattern(sm->payload_size(), 24).data()),
                 InjectedCrash);
    FailPoints::Instance().clear();
    // Simulated death: drop the manager without a clean flush.
  }
  // The file reopens; the flushed page is intact, the unflushed id is
  // beyond the durable tail.
  auto sm = DiskStorageManager::Open(path);
  std::vector<char> out(sm->payload_size());
  sm->read(0, out.data());
  EXPECT_EQ(out, Pattern(sm->payload_size(), 23));
}

TEST(PageStream, BlobRoundTripsAtEdgeSizes) {
  MemoryStorageManager sm(1024);
  const std::size_t cap = sm.payload_size() - 8;  // chain header is 8 bytes
  const std::vector<std::size_t> sizes = {0,       1,       cap - 1, cap,
                                          cap + 1, 3 * cap, 100000};
  for (const std::size_t n : sizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    BufferPool::Options po;
    po.capacity = 4;
    BufferPool pool(&sm, po);
    std::string text;
    text.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      text.push_back(static_cast<char>('a' + (i * 31 + n) % 26));

    PageBlobWriter writer(&pool);
    writer.stream() << text;
    const PageBlob blob = writer.finish();
    EXPECT_EQ(blob.bytes, n);
    EXPECT_EQ(blob.pages, (n + cap - 1) / cap);

    PageBlobReader reader(&pool);
    std::string got((std::istreambuf_iterator<char>(reader.stream())),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(got, text);
  }
}

TEST(PageStream, BlobSurvivesDiskReopen) {
  const std::string path = TempPath("blob_reopen.pagefile");
  DiskStorageManager::Options opts;
  opts.page_size = 1024;
  std::string text;
  for (int i = 0; i < 5000; ++i) text += "line " + std::to_string(i) + "\n";
  {
    auto sm = DiskStorageManager::Create(path, opts);
    BufferPool::Options po;
    po.capacity = 3;
    BufferPool pool(sm.get(), po);
    PageBlobWriter writer(&pool);
    writer.stream() << text;
    writer.finish();
  }
  {
    auto sm = DiskStorageManager::Open(path);
    BufferPool::Options po;
    po.capacity = 3;
    BufferPool pool(sm.get(), po);
    PageBlobReader reader(&pool);
    std::string got((std::istreambuf_iterator<char>(reader.stream())),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(got, text);
  }
}

TEST(PageStream, TornChainPageSurfacesTypedError) {
  const std::string path = TempPath("blob_torn.pagefile");
  DiskStorageManager::Options opts;
  opts.page_size = 1024;
  std::string text(10000, 'z');
  {
    auto sm = DiskStorageManager::Create(path, opts);
    BufferPool::Options po;
    po.capacity = 3;
    BufferPool pool(sm.get(), po);
    PageBlobWriter writer(&pool);
    writer.stream() << text;
    writer.finish();
  }
  // Chop the last chain page off the file.
  fs::resize_file(path, fs::file_size(path) - 1024);
  auto sm = DiskStorageManager::Open(path);
  BufferPool::Options po;
  po.capacity = 3;
  BufferPool pool(sm.get(), po);
  PageBlobReader reader(&pool);
  EXPECT_THROW(
      {
        std::string got((std::istreambuf_iterator<char>(reader.stream())),
                        std::istreambuf_iterator<char>());
      },
      StorageError);
}

}  // namespace
}  // namespace pubsub
