#include "workload/trace.h"

#include <gtest/gtest.h>

#include <map>

namespace pubsub {
namespace {

TransitStubNetwork Net() {
  Rng rng(1);
  return GenerateTransitStub(PaperNetSection5(), rng);
}

TEST(Trace, EventsAreTimestampOrderedAndInDomain) {
  const TransitStubNetwork net = Net();
  Rng rng(2);
  const StockModelParams space_params;
  const auto trace = GenerateStockTrace(net, space_params, {}, 1000, rng);
  ASSERT_EQ(trace.size(), 1000u);
  const EventSpace space = StockSpace(space_params);
  const Rect domain = space.domain_rect();
  double prev = -1.0;
  for (const TraceEvent& ev : trace) {
    EXPECT_GT(ev.timestamp, prev);
    prev = ev.timestamp;
    EXPECT_TRUE(domain.contains(ev.pub.point)) << ev.timestamp;
    EXPECT_NE(net.stub_of_node[static_cast<std::size_t>(ev.pub.origin)], -1);
  }
}

TEST(Trace, TapeIsZipfSkewed) {
  const TransitStubNetwork net = Net();
  Rng rng(3);
  const auto trace = GenerateStockTrace(net, {}, {}, 20000, rng);
  std::map<int, int> per_stock;
  for (const TraceEvent& ev : trace) ++per_stock[static_cast<int>(ev.pub.point[1])];
  int busiest = 0, total = 0;
  for (const auto& [stock, n] : per_stock) {
    busiest = std::max(busiest, n);
    total += n;
  }
  // Zipf(21, 1.2): the top stock should take well above the uniform share.
  EXPECT_GT(busiest, total / 21 * 3);
}

TEST(Trace, PricesWalkSmoothly) {
  const TransitStubNetwork net = Net();
  TraceParams params;
  params.num_stocks = 1;  // single stock: consecutive quotes form one walk
  Rng rng(4);
  const auto trace = GenerateStockTrace(net, {}, params, 2000, rng);
  double max_step = 0;
  for (std::size_t i = 1; i < trace.size(); ++i)
    max_step = std::max(max_step,
                        std::abs(trace[i].pub.point[2] - trace[i - 1].pub.point[2]));
  // Steps are N(0, 0.35) plus integer rounding: a jump of 4 would be >10σ.
  EXPECT_LE(max_step, 4.0);
}

TEST(Trace, ArrivalRateMatchesPoissonParameter) {
  const TransitStubNetwork net = Net();
  TraceParams params;
  params.events_per_second = 10.0;
  Rng rng(5);
  const auto trace = GenerateStockTrace(net, {}, params, 5000, rng);
  const double duration = trace.back().timestamp;
  EXPECT_NEAR(static_cast<double>(trace.size()) / duration, 10.0, 0.5);
}

TEST(Trace, RejectsBadParameters) {
  const TransitStubNetwork net = Net();
  Rng rng(6);
  TraceParams bad;
  bad.num_stocks = 0;
  EXPECT_THROW(GenerateStockTrace(net, {}, bad, 10, rng), std::invalid_argument);
  TraceParams bad_rate;
  bad_rate.events_per_second = 0;
  EXPECT_THROW(GenerateStockTrace(net, {}, bad_rate, 10, rng), std::invalid_argument);
}

}  // namespace
}  // namespace pubsub
