#include "overlay/content_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "index/rtree.h"
#include "net/multicast.h"
#include "net/shortest_path.h"
#include "net/spanning.h"
#include "net/transit_stub.h"
#include "sim/scenario.h"

namespace pubsub {
namespace {

// Line network 0-1-2-3 with subscribers at nodes 1 and 3.
struct LineFixture {
  LineFixture() : graph(4) {
    graph.add_edge(0, 1, 1.0);
    graph.add_edge(1, 2, 2.0);
    graph.add_edge(2, 3, 4.0);
    wl.space = EventSpace({{"x", 10}});
    auto add = [this](NodeId node, double lo, double hi) {
      Subscriber s;
      s.node = node;
      s.interest = Rect({Interval(lo, hi)});
      wl.subscribers.push_back(std::move(s));
    };
    add(1, -1, 4);  // sub 0 at node 1, x in {0..4}
    add(3, 3, 9);   // sub 1 at node 3, x in {4..9}
  }
  Graph graph;
  Workload wl;
};

TEST(ContentRouter, ExactRoutingFollowsTreePathsOnly) {
  LineFixture f;
  ContentRouter router(f.graph, f.wl);

  // Event x=2 interests only sub 0 (node 1): from node 0 traverse edge 0-1.
  RouteResult r = router.route(0, Point{2.0}, {0});
  EXPECT_EQ(r.cost, 1.0);
  EXPECT_EQ(r.edges_traversed, 1);
  EXPECT_EQ(r.wasted_edges, 0);

  // Event x=4 interests both: full line, cost 1+2+4.
  r = router.route(0, Point{4.0}, {0, 1});
  EXPECT_EQ(r.cost, 7.0);
  EXPECT_EQ(r.wasted_edges, 0);

  // Published at node 2, interested {0,1}: edges 1-2 and 2-3.
  r = router.route(2, Point{4.0}, {0, 1});
  EXPECT_EQ(r.cost, 6.0);

  // Nobody interested: nothing forwarded.
  r = router.route(0, Point{2.0}, {});
  EXPECT_EQ(r.cost, 0.0);
  EXPECT_EQ(r.edges_traversed, 0);
  EXPECT_EQ(r.nodes_reached, 1);
}

TEST(ContentRouter, ReachedNodesCoverInterestedSubscribers) {
  LineFixture f;
  ContentRouter router(f.graph, f.wl);
  std::vector<NodeId> reached;
  router.route(0, Point{4.0}, {0, 1}, &reached);
  const std::set<NodeId> got(reached.begin(), reached.end());
  EXPECT_TRUE(got.count(1));
  EXPECT_TRUE(got.count(3));
}

TEST(ContentRouter, BoundsSummariesForwardSuperset) {
  LineFixture f;
  ContentRouterOptions opt;
  opt.summary = SummaryKind::kBounds;
  ContentRouter router(f.graph, f.wl, opt);

  // x=2 only matches sub 0, but the bounds of "behind 1→2" hull the
  // interests of sub 1 (3,9]; x=2 is outside, so no waste here.
  RouteResult r = router.route(0, Point{2.0}, {0});
  EXPECT_GE(r.cost, 1.0);
  // x=3.5 is inside sub 1's hull but belongs only to sub 0's range (3.5 in
  // (3,9] too — both match).  Use x=8: only sub 1.
  std::vector<NodeId> reached;
  r = router.route(0, Point{8.0}, {1}, &reached);
  EXPECT_TRUE(std::find(reached.begin(), reached.end(), 3) != reached.end());
  EXPECT_GE(r.wasted_edges, 0);
}

TEST(ContentRouter, ExactCostEqualsPrunedTreeMulticast) {
  // Property: exact content routing over the tree costs exactly the pruned
  // multicast over the same tree (union of origin→interested-node paths).
  Rng net_rng(3);
  TransitStubParams shape;
  shape.transit_blocks = 3;
  shape.transit_nodes_per_block = 2;
  shape.stubs_per_transit_node = 2;
  shape.nodes_per_stub = 4;
  Scenario s = MakeStockScenario(120, PublicationHotSpots::kOne, 17, {}, shape);

  ContentRouter router(s.net.graph, s.workload);

  // Rebuild the routing tree as its own graph to compute the reference.
  Graph tree_graph(s.net.graph.num_nodes());
  {
    ContentRouterOptions opt;  // same defaults → same MST
    // Recompute the MST directly; KruskalMst is deterministic.
    for (const EdgeId e : KruskalMst(s.net.graph)) {
      const Edge& edge = s.net.graph.edge(e);
      tree_graph.add_edge(edge.u, edge.v, edge.cost);
    }
  }
  PrunedSptCost pruner(tree_graph);

  // Index for exact interested sets.
  std::vector<std::pair<Rect, int>> items;
  const Rect domain = s.workload.space.domain_rect();
  for (std::size_t i = 0; i < s.workload.subscribers.size(); ++i)
    items.emplace_back(s.workload.subscribers[i].interest.intersection(domain),
                       static_cast<int>(i));
  const RTree index = RTree::BulkLoad(std::move(items));

  Rng rng(18);
  for (int trial = 0; trial < 40; ++trial) {
    const Publication pub = s.pub->sample(rng);
    const std::vector<SubscriberId> interested = index.stab(pub.point);
    const RouteResult r = router.route(pub.origin, pub.point, interested);
    EXPECT_EQ(r.wasted_edges, 0);

    std::vector<NodeId> nodes;
    for (const SubscriberId sub : interested)
      nodes.push_back(s.workload.subscribers[static_cast<std::size_t>(sub)].node);
    const ShortestPathTree spt = Dijkstra(tree_graph, pub.origin);
    EXPECT_NEAR(r.cost, pruner.cost(spt, nodes), 1e-9) << "trial " << trial;
  }
}

TEST(ContentRouter, BoundsNeverMissAndNeverBeatExact) {
  Rng net_rng(5);
  TransitStubParams shape;
  shape.transit_blocks = 3;
  shape.transit_nodes_per_block = 1;
  shape.stubs_per_transit_node = 2;
  shape.nodes_per_stub = 8;
  Scenario s = MakeStockScenario(150, PublicationHotSpots::kOne, 23, {}, shape);

  ContentRouter exact(s.net.graph, s.workload);
  ContentRouterOptions bopt;
  bopt.summary = SummaryKind::kBounds;
  ContentRouter bounds(s.net.graph, s.workload, bopt);

  std::vector<std::pair<Rect, int>> items;
  const Rect domain = s.workload.space.domain_rect();
  for (std::size_t i = 0; i < s.workload.subscribers.size(); ++i)
    items.emplace_back(s.workload.subscribers[i].interest.intersection(domain),
                       static_cast<int>(i));
  const RTree index = RTree::BulkLoad(std::move(items));

  Rng rng(6);
  for (int trial = 0; trial < 40; ++trial) {
    const Publication pub = s.pub->sample(rng);
    const std::vector<SubscriberId> interested = index.stab(pub.point);

    std::vector<NodeId> reached;
    const RouteResult rb = bounds.route(pub.origin, pub.point, interested, &reached);
    const RouteResult re = exact.route(pub.origin, pub.point, interested);
    EXPECT_GE(rb.cost, re.cost - 1e-9);

    const std::set<NodeId> reached_set(reached.begin(), reached.end());
    for (const SubscriberId sub : interested)
      EXPECT_TRUE(reached_set.count(
          s.workload.subscribers[static_cast<std::size_t>(sub)].node))
          << "missed subscriber " << sub;
  }
}

TEST(ContentRouter, SptTreeVariant) {
  LineFixture f;
  ContentRouterOptions opt;
  opt.tree = OverlayTree::kSptFromRoot;
  opt.spt_root = 2;
  ContentRouter router(f.graph, f.wl, opt);
  // A line's SPT is the line itself regardless of root.
  EXPECT_EQ(router.num_tree_edges(), 3);
  EXPECT_EQ(router.route(0, Point{4.0}, {0, 1}).cost, 7.0);
}

TEST(ContentRouter, UpdatePropagationCosts) {
  LineFixture f;
  // Exact summaries: every broker with the subscriber behind it refreshes —
  // n−1 directed summaries per update.
  ContentRouter exact(f.graph, f.wl);
  EXPECT_EQ(exact.update_subscription(0, f.wl.subscribers[0].interest), 3);

  // Bounds summaries: an interest change absorbed by unchanged hulls
  // refreshes nothing.
  ContentRouterOptions bopt;
  bopt.summary = SummaryKind::kBounds;
  ContentRouter bounds(f.graph, f.wl, bopt);
  EXPECT_EQ(bounds.update_subscription(0, f.wl.subscribers[0].interest), 0);

  // Shrinking subscriber 1's interest changes the hulls on its side.
  f.wl.subscribers[1].interest = Rect({Interval(5, 6)});
  EXPECT_GT(bounds.update_subscription(1, f.wl.subscribers[1].interest), 0);
}

TEST(ContentRouter, StateAccounting) {
  LineFixture f;
  ContentRouter exact(f.graph, f.wl);
  // 3 tree edges × 2 directions × 2 subscriber bits.
  EXPECT_EQ(exact.state_bits(), 12u);
  ContentRouterOptions bopt;
  bopt.summary = SummaryKind::kBounds;
  ContentRouter bounds(f.graph, f.wl, bopt);
  // 5 of 6 directed edges carry a hull (the edge pointing at the empty
  // node-0 side stores nothing) × 1 dimension × 2 doubles.
  EXPECT_EQ(bounds.state_bits(), 5u * 128u);
  EXPECT_EQ(exact.tree_cost(), 7.0);
}

}  // namespace
}  // namespace pubsub
