#include "sim/hybrid.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/grid.h"
#include "sim/scenario.h"

namespace pubsub {
namespace {

struct Fixture {
  Fixture()
      : scenario(MakeStockScenario(400, PublicationHotSpots::kOne, 41)),
        sim(scenario.net.graph, scenario.workload),
        grid(scenario.workload, *scenario.pub) {
    Rng rng(42);
    events = SampleEvents(sim, *scenario.pub, 120, rng);
    base = EvaluateBaselines(sim, events);
    Rng algo_rng(43);
    assignment = GridAlgorithmByName("forgy").run(grid.top_cells(1500), 40, algo_rng);
    matcher = std::make_unique<GridMatcher>(grid, assignment, 40);
  }

  Scenario scenario;
  DeliverySimulator sim;
  Grid grid;
  std::vector<EventSample> events;
  BaselineCosts base;
  Assignment assignment;
  std::unique_ptr<GridMatcher> matcher;
};

TEST(Hybrid, OracleNeverWorseThanAnyPureStrategy) {
  Fixture f;
  const HybridCosts oracle = EvaluateHybrid(f.sim, f.events, MatcherFn(*f.matcher),
                                            HybridPolicy::kOracle);
  const ClusteredCosts pure =
      EvaluateMatcher(f.sim, f.events, MatcherFn(*f.matcher));
  EXPECT_LE(oracle.network, f.base.unicast + 1e-6);
  EXPECT_LE(oracle.network, f.base.broadcast + 1e-6);
  EXPECT_LE(oracle.network, pure.network + 1e-6);
  EXPECT_EQ(oracle.chose_unicast + oracle.chose_multicast + oracle.chose_broadcast,
            f.events.size());
}

TEST(Hybrid, RulePolicyIsBetweenOracleAndWorstPure) {
  Fixture f;
  const HybridCosts oracle = EvaluateHybrid(f.sim, f.events, MatcherFn(*f.matcher),
                                            HybridPolicy::kOracle);
  const HybridCosts rule = EvaluateHybrid(f.sim, f.events, MatcherFn(*f.matcher),
                                          HybridPolicy::kRule);
  EXPECT_GE(rule.network, oracle.network - 1e-6);
  // The rule must not be a catastrophe: better than always-broadcast.
  EXPECT_LE(rule.network, f.base.broadcast + 1e-6);
}

TEST(Hybrid, RuleExtremesForceSingleStrategy) {
  Fixture f;
  HybridRuleParams always_unicast;
  always_unicast.unicast_max = f.scenario.workload.num_subscribers();
  const HybridCosts u = EvaluateHybrid(f.sim, f.events, MatcherFn(*f.matcher),
                                       HybridPolicy::kRule, always_unicast);
  EXPECT_EQ(u.chose_unicast, f.events.size());
  EXPECT_NEAR(u.network, f.base.unicast, 1e-6);

  HybridRuleParams always_broadcast;
  always_broadcast.broadcast_fraction = 0.0;
  const HybridCosts b = EvaluateHybrid(f.sim, f.events, MatcherFn(*f.matcher),
                                       HybridPolicy::kRule, always_broadcast);
  EXPECT_EQ(b.chose_broadcast, f.events.size());
  EXPECT_NEAR(b.network, f.base.broadcast, 1e-6);
}

TEST(Hybrid, OracleMixesStrategies) {
  // On this workload the oracle should actually use at least two of the
  // three strategies (events vary from 0 interested to dozens).
  Fixture f;
  const HybridCosts oracle = EvaluateHybrid(f.sim, f.events, MatcherFn(*f.matcher),
                                            HybridPolicy::kOracle);
  int strategies_used = 0;
  if (oracle.chose_unicast > 0) ++strategies_used;
  if (oracle.chose_multicast > 0) ++strategies_used;
  if (oracle.chose_broadcast > 0) ++strategies_used;
  EXPECT_GE(strategies_used, 2);
}

}  // namespace
}  // namespace pubsub
