#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "io/serialize.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/thread_pool.h"
#include "workload/stock_model.h"

namespace pubsub {
namespace {

// ---- histogram bucket boundaries -----------------------------------------

TEST(Metrics, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h", "test", {1.0, 2.0, 4.0});

  h->observe(0.5);  // -> le=1
  h->observe(1.0);  // exact bound is inclusive (prometheus `le`) -> le=1
  h->observe(1.5);  // -> le=2
  h->observe(2.0);  // -> le=2
  h->observe(3.0);  // -> le=4
  h->observe(5.0);  // -> +Inf

  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 5.0);
  const std::vector<std::uint64_t> buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + the implicit +Inf bucket
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, BucketGenerators) {
  const std::vector<double> exp = ExponentialBuckets(1.0, 2.0, 3);
  ASSERT_EQ(exp.size(), 3u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[1], 2.0);
  EXPECT_DOUBLE_EQ(exp[2], 4.0);

  const std::vector<double> lin = LinearBuckets(10.0, 5.0, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[0], 10.0);
  EXPECT_DOUBLE_EQ(lin[1], 15.0);
  EXPECT_DOUBLE_EQ(lin[2], 20.0);
}

// ---- shard merge under concurrency ---------------------------------------

// Counter and histogram updates are sharded per thread; the scrape-side
// merge is a plain sum, so the total must equal the number of updates no
// matter how threads were assigned to shards.
TEST(Metrics, ShardMergeIsExactUnderThreads) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c", "test");
  Histogram* h = reg.histogram("h", "test", {0.5});

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c->inc();
        h->observe(1.0);
      }
    });
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(c->value(), kThreads * kPerThread);
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  const std::vector<std::uint64_t> buckets = h->bucket_counts();
  EXPECT_EQ(buckets.back(), kThreads * kPerThread);  // all in +Inf
}

// ---- registry semantics ---------------------------------------------------

TEST(Metrics, RegistryDeduplicatesByName) {
  MetricsRegistry reg;
  Counter* a = reg.counter("dup", "first");
  Counter* b = reg.counter("dup", "second registration ignored");
  EXPECT_EQ(a, b);
  a->inc(3);
  EXPECT_EQ(b->value(), 3u);
}

TEST(Metrics, RegistryThrowsOnKindMismatch) {
  MetricsRegistry reg;
  reg.counter("m", "a counter");
  EXPECT_THROW(reg.gauge("m", "now a gauge"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("m", "now a histogram", {1.0}),
               std::invalid_argument);
}

TEST(Metrics, DisabledRegistryDropsUpdates) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c", "test");
  Gauge* g = reg.gauge("g", "test");
  c->inc();
  g->set(2.0);
  reg.set_enabled(false);
  c->inc(100);
  g->set(99.0);
  EXPECT_EQ(c->value(), 1u);       // stale value survives a scrape
  EXPECT_DOUBLE_EQ(g->value(), 2.0);
  reg.set_enabled(true);
  c->inc();
  EXPECT_EQ(c->value(), 2u);
}

TEST(Metrics, NullSafeHelpers) {
  Inc(nullptr);
  Set(nullptr, 1.0);
  Observe(nullptr, 1.0);  // must not crash
}

// ---- trace ring -----------------------------------------------------------

TEST(Trace, RingWrapsAndCountsDrops) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    ring.record(TraceSpan{i, i, -1, PublishStage::kMatch,
                          static_cast<double>(i), 0.0});

  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);

  const std::vector<TraceSpan> spans = ring.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first: the last four records survive.
  for (std::size_t i = 0; i < spans.size(); ++i)
    EXPECT_EQ(spans[i].seq, 6u + i);
}

TEST(Trace, TextWriterEmitsSummaryAndSpans) {
  TraceRing ring(2);
  ring.record(TraceSpan{7, 7, -1, PublishStage::kDeliveryPlan, 1.0, 0.25});
  std::ostringstream os;
  WriteTraceText(os, ring);
  const std::string text = os.str();
  EXPECT_NE(text.find("# trace capacity 2 recorded 1 dropped 0"),
            std::string::npos);
  EXPECT_NE(text.find(StageName(PublishStage::kDeliveryPlan)),
            std::string::npos);
}

// ---- exposition -----------------------------------------------------------

TEST(Metrics, PrometheusTextSplitsEmbeddedLabels) {
  MetricsRegistry reg;
  reg.counter("requests_total{code=\"200\"}", "labeled counter")->inc(3);
  reg.gauge("temperature", "plain gauge")->set(21.5);
  reg.histogram("latency_ms", "histogram", {1.0, 2.0})->observe(1.5);

  std::ostringstream os;
  WriteMetricsText(os, reg.scrape());
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total{code=\"200\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE temperature gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_count 1"), std::string::npos);
}

TEST(Metrics, JsonExpositionContainsSamples) {
  MetricsRegistry reg;
  reg.counter("c_total", "counter")->inc(5);
  std::ostringstream os;
  WriteMetricsJson(os, reg.scrape());
  const std::string text = os.str();
  EXPECT_NE(text.find("\"c_total\""), std::string::npos);
  EXPECT_NE(text.find("\"counter\""), std::string::npos);
}

TEST(Metrics, ScrapeCanExcludeRuntimeMetrics) {
  MetricsRegistry reg;
  reg.counter("det_total", "deterministic");
  reg.counter("rt_total", "runtime", MetricStability::kRuntime);
  const MetricsSnapshot all = reg.scrape();
  const MetricsSnapshot det = reg.scrape(/*include_runtime=*/false);
  EXPECT_EQ(all.samples.size(), 2u);
  ASSERT_EQ(det.samples.size(), 1u);
  EXPECT_EQ(det.samples[0].info.name, "det_total");
}

// ---- snapshot merge (fleet scrape building block) --------------------------

TEST(Metrics, MergeCombinesExactDuplicateNames) {
  MetricsRegistry a;
  a.counter("c_total", "counter")->inc(3);
  a.gauge("g", "gauge")->set(1.5);
  a.histogram("h_ms", "hist", {1.0, 2.0})->observe(0.5);
  MetricsRegistry b;
  b.counter("c_total", "counter")->inc(4);
  b.gauge("g", "gauge")->set(2.5);
  b.histogram("h_ms", "hist", {1.0, 2.0})->observe(1.5);

  MetricsSnapshot snap = a.scrape();
  snap.merge(b.scrape());
  ASSERT_EQ(snap.samples.size(), 3u);  // combined, never duplicated
  EXPECT_EQ(snap.samples[0].info.name, "c_total");
  EXPECT_EQ(snap.samples[0].counter_value, 7u);
  EXPECT_DOUBLE_EQ(snap.samples[1].gauge_value, 1.5 + 2.5);
  EXPECT_EQ(snap.samples[2].hist_count, 2u);
  EXPECT_DOUBLE_EQ(snap.samples[2].hist_sum, 2.0);
  ASSERT_EQ(snap.samples[2].hist_buckets.size(), 3u);
  EXPECT_EQ(snap.samples[2].hist_buckets[0], 1u);
  EXPECT_EQ(snap.samples[2].hist_buckets[1], 1u);
}

TEST(Metrics, MergeThrowsOnKindOrBoundsMismatch) {
  MetricsRegistry a;
  a.counter("m", "counter");
  MetricsRegistry b;
  b.gauge("m", "gauge");
  MetricsSnapshot snap = a.scrape();
  EXPECT_THROW(snap.merge(b.scrape()), std::invalid_argument);

  MetricsRegistry c;
  c.histogram("h", "hist", {1.0});
  MetricsRegistry d;
  d.histogram("h", "hist", {2.0});
  MetricsSnapshot hsnap = c.scrape();
  EXPECT_THROW(hsnap.merge(d.scrape()), std::invalid_argument);
}

// The fleet-scrape regression: identical per-shard metric names must land
// as distinct labeled series, never alias into one double-counted sample.
TEST(Metrics, MergeLabeledKeepsShardSeriesDistinct) {
  MetricsRegistry shard0;
  shard0.counter("broker_commands_total", "cmds")->inc(10);
  shard0.counter("hits_total{stage=\"match\"}", "labeled")->inc(1);
  MetricsRegistry shard1;
  shard1.counter("broker_commands_total", "cmds")->inc(20);
  shard1.counter("hits_total{stage=\"match\"}", "labeled")->inc(2);

  MetricsSnapshot snap;
  snap.merge_labeled(shard0.scrape(), "shard", "0");
  snap.merge_labeled(shard1.scrape(), "shard", "1");

  ASSERT_EQ(snap.samples.size(), 4u);
  const auto find = [&](const std::string& name) -> const MetricSample* {
    for (const MetricSample& s : snap.samples)
      if (s.info.name == name) return &s;
    return nullptr;
  };
  const MetricSample* c0 = find("broker_commands_total{shard=\"0\"}");
  const MetricSample* c1 = find("broker_commands_total{shard=\"1\"}");
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c0->counter_value, 10u);
  EXPECT_EQ(c1->counter_value, 20u);
  // The shard label is appended to an existing label set, not nested.
  const MetricSample* l1 = find("hits_total{stage=\"match\",shard=\"1\"}");
  ASSERT_NE(l1, nullptr);
  EXPECT_EQ(l1->counter_value, 2u);
}

// ---- watchdog: quantiles, skew, backlog, audit -----------------------------

TEST(Watchdog, HistogramQuantileInterpolatesWithinBucket) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // 2 in (0,1], 4 in (1,2], 2 in (2,4], 2 in +Inf.
  const std::vector<std::uint64_t> buckets = {2, 4, 2, 2};
  // p50: rank 5 -> 3rd of 4 inside (1,2] -> 1.75.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, buckets, 0.5), 1.75);
  // p0 clamps to rank 1 -> first half of (0,1].
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, buckets, 0.0), 0.5);
  // p100 lands in +Inf: clamp to the last finite bound.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, buckets, 1.0), 4.0);
  // Empty histogram reads 0.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {0, 0, 0, 0}, 0.99), 0.0);
}

TEST(Watchdog, SlowShardAlertIsEdgeTriggered) {
  MetricsRegistry reg;
  Histogram* fast0 = reg.histogram("s0", "t", {1.0, 10.0, 100.0});
  Histogram* fast1 = reg.histogram("s1", "t", {1.0, 10.0, 100.0});
  Histogram* slow = reg.histogram("s2", "t", {1.0, 10.0, 100.0});
  for (int i = 0; i < 32; ++i) {
    fast0->observe(0.5);
    fast1->observe(0.5);
    slow->observe(90.0);
  }
  WatchdogOptions opts;
  opts.min_samples = 16;
  FleetWatchdog dog(opts, &reg);
  const std::vector<const Histogram*> hists = {fast0, fast1, slow};

  std::vector<WatchdogAlert> alerts = dog.check(1.0, hists, 0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, WatchdogAlertKind::kSlowShard);
  EXPECT_EQ(alerts[0].shard, 2);
  EXPECT_NE(alerts[0].detail.find("shard 2"), std::string::npos);
  // Still slow on the next check: edge-triggered, no repeat alert.
  EXPECT_TRUE(dog.check(2.0, hists, 0).empty());
  EXPECT_EQ(dog.checks(), 2u);
  EXPECT_EQ(reg.counter("watchdog_alerts_total{kind=\"slow_shard\"}", "",
                        MetricStability::kRuntime)
                ->value(),
            1u);
}

TEST(Watchdog, HealthyShardsStaySilent) {
  MetricsRegistry reg;
  Histogram* a = reg.histogram("a", "t", {1.0, 10.0});
  Histogram* b = reg.histogram("b", "t", {1.0, 10.0});
  for (int i = 0; i < 64; ++i) {
    a->observe(0.4);
    b->observe(0.6);
  }
  FleetWatchdog dog(WatchdogOptions{});
  // Balanced latencies, small backlog, dead shard (null) skipped.
  EXPECT_TRUE(dog.check(1.0, {a, b, nullptr}, 3).empty());
  EXPECT_TRUE(dog.alerts().empty());
}

TEST(Watchdog, BacklogAlertFiresOnceUntilCleared) {
  WatchdogOptions opts;
  opts.max_backlog = 4;
  FleetWatchdog dog(opts);
  EXPECT_TRUE(dog.check(1.0, {}, 3).empty());
  std::vector<WatchdogAlert> alerts = dog.check(2.0, {}, 4);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, WatchdogAlertKind::kStallBacklog);
  EXPECT_TRUE(dog.check(3.0, {}, 9).empty());   // still over: no repeat
  EXPECT_TRUE(dog.check(4.0, {}, 0).empty());   // cleared: re-armed
  ASSERT_EQ(dog.check(5.0, {}, 4).size(), 1u);  // fires again
}

TEST(Watchdog, AuditFlagsSeqAndDigestDivergence) {
  FleetWatchdog dog(WatchdogOptions{});
  // Healthy baseline.
  EXPECT_TRUE(dog.audit(1.0, {{0, 5, 5, 111}, {1, 6, 6, 222}}).empty());
  // Shard 1's seq disagrees with the fleet bookkeeping.
  std::vector<WatchdogAlert> alerts =
      dog.audit(2.0, {{0, 7, 7, 112}, {1, 6, 8, 222}});
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, WatchdogAlertKind::kDigestDivergence);
  EXPECT_EQ(alerts[0].shard, 1);
  // Edge-triggered while the condition persists.
  EXPECT_TRUE(dog.audit(3.0, {{1, 6, 8, 222}}).empty());
  // Digest mutated with no seq movement: state changed outside the
  // sequenced command stream.
  EXPECT_TRUE(dog.audit(4.0, {{0, 7, 7, 112}}).empty());
  alerts = dog.audit(5.0, {{0, 7, 7, 999}});
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_NE(alerts[0].detail.find("digest changed"), std::string::npos);
  EXPECT_EQ(dog.audits(), 5u);
}

// ---- broker metrics byte-stability across thread counts --------------------

// Drives two brokers with the identical command stream at --threads=1 and
// --threads=8 and asserts the deterministic scrape is byte-identical: the
// issue's acceptance criterion for the sharded registry.
TEST(Metrics, BrokerDeterministicScrapeIsByteStableAcrossThreads) {
  const Scenario scenario = MakeStockScenario(200, PublicationHotSpots::kOne, 61);
  DeliverySimulator sim(scenario.net.graph, scenario.workload);
  Rng rng(62);
  const std::vector<EventSample> events = SampleEvents(sim, *scenario.pub, 80, rng);

  const auto run = [&](int threads) {
    ThreadPool::global().set_num_threads(threads);
    BrokerOptions opts;
    opts.group.num_groups = 10;
    opts.group.max_cells = 600;
    opts.refresh.churn_fraction = 0.05;
    opts.refresh.waste_ratio = 0.0;
    opts.obs.trace_sample = 4;
    ManualClock clock;
    Broker broker(scenario.workload, *scenario.pub, scenario.net.graph, opts,
                  &clock);
    for (std::size_t i = 0; i < events.size(); ++i) {
      clock.advance(5.0);
      if (i % 7 == 3)
        broker.subscribe(events[i].pub.origin,
                         broker.workload().space.domain_rect());
      broker.publish(events[i].pub.origin, events[i].pub.point);
    }
    std::ostringstream os;
    WriteMetricsText(os, broker.metrics().scrape(/*include_runtime=*/false));
    return os.str();
  };

  const std::string serial = run(1);
  const std::string parallel = run(8);
  ThreadPool::global().set_num_threads(1);
  EXPECT_EQ(serial, parallel);
  // Sanity: the deterministic scrape actually carries broker counters.
  EXPECT_NE(serial.find("broker_commands_total"), std::string::npos);
}

}  // namespace
}  // namespace pubsub
