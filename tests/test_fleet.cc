// Tests for the sharded broker fleet (src/serve): the tentpole invariant
// — at any shard count the fleet digest is bit-identical to a
// single-broker oracle at every sequence number — plus the clone-pattern
// failover path (late-joiner catch-up, promotion, the
// promote.journal_handoff fail point and the cold-recovery fallback),
// checkpoint/recover round trips, degraded-shard stall/heal, and the
// deterministic event loop that drives the serve daemon.
#include "serve/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "broker/chaos.h"
#include "io/serialize.h"
#include "serve/catchup.h"
#include "serve/event_loop.h"
#include "sim/scenario.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace pubsub {
namespace {

BrokerOptions SmallBrokerOptions() {
  BrokerOptions opts;
  opts.group.num_groups = 8;
  opts.group.max_cells = 300;
  return opts;
}

FleetOptions SmallFleetOptions(std::size_t shards) {
  FleetOptions opts;
  opts.num_shards = shards;
  opts.broker = SmallBrokerOptions();
  return opts;
}

std::vector<JournalRecord> ParseJournal(const std::string& bytes) {
  std::istringstream is(bytes);
  return ReadJournalLenient(is).journal.records;
}

TEST(FleetPartition, StableHashRoutingCoversEveryShard) {
  std::vector<std::size_t> histogram(5, 0);
  for (SubscriberId id = 0; id < 1000; ++id) {
    EXPECT_EQ(FleetShardOf(id, 1), 0u);
    const std::size_t k = FleetShardOf(id, 5);
    ASSERT_LT(k, 5u);
    EXPECT_EQ(k, FleetShardOf(id, 5));  // stable: a pure function of the id
    ++histogram[k];
  }
  // splitmix64 spreads sequential ids: no shard is starved or dominant.
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_GT(histogram[k], 100u) << "shard " << k << " starved";
    EXPECT_LT(histogram[k], 350u) << "shard " << k << " dominant";
  }
}

TEST(FleetPartition, ChainFoldIsSensitiveToSeqAndMembers) {
  const std::vector<SubscriberId> a{1, 5, 9};
  const std::vector<SubscriberId> b{1, 5, 10};
  const std::uint64_t h = FleetChainFold(0, 3, a);
  EXPECT_NE(h, FleetChainFold(0, 4, a));  // seq folds in
  EXPECT_NE(h, FleetChainFold(0, 3, b));  // membership folds in
  EXPECT_NE(h, FleetChainFold(1, 3, a));  // the chain itself folds in
  EXPECT_EQ(h, FleetChainFold(0, 3, a));  // and it is a pure function
}

// The tentpole invariant: the fleet digest, match chain and every merged
// interested set are bit-identical to the single-broker oracle at every
// sequence number, for every shard count.
void ExpectOracleParity(std::size_t shards) {
  const Scenario sc = MakeStockScenario(60, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 120, 4, 7);

  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph,
                    SmallFleetOptions(shards));
  FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, SmallBrokerOptions());
  for (const JournalRecord& rec : schedule) {
    if (rec.cmd.type == BrokerCommandType::kPublish) {
      const FleetPublishOutcome out = fleet.apply(rec);
      oracle.apply(rec);
      const auto want = oracle.last_interested();
      ASSERT_TRUE(std::equal(out.interested.begin(), out.interested.end(),
                             want.begin(), want.end()))
          << "merged interested set diverged at seq " << rec.seq;
      ASSERT_TRUE(std::is_sorted(out.interested.begin(), out.interested.end()));
    } else {
      fleet.apply(rec);
      oracle.apply(rec);
    }
    ASSERT_EQ(fleet.seq(), oracle.seq());
    ASSERT_EQ(fleet.match_chain(), oracle.match_chain()) << "seq " << rec.seq;
    ASSERT_EQ(fleet.state_digest(), oracle.state_digest())
        << "seq " << rec.seq;
  }
  EXPECT_EQ(fleet.seq(), schedule.size());
  // The logical table mirrors the oracle's slot-for-slot (tombstones
  // included; live_subscribers counts only the non-tombstoned ones).
  EXPECT_EQ(fleet.workload().num_subscribers(),
            oracle.broker().workload().num_subscribers());
  EXPECT_LE(fleet.live_subscribers(), fleet.workload().num_subscribers());
}

TEST(Fleet, OracleParityOneShard) { ExpectOracleParity(1); }
TEST(Fleet, OracleParityTwoShards) { ExpectOracleParity(2); }
TEST(Fleet, OracleParityThreeShards) { ExpectOracleParity(3); }
TEST(Fleet, OracleParityEightShards) { ExpectOracleParity(8); }

// The cold read path serves the same merged set as the fan-out path.
TEST(Fleet, ColdInterestedMatchesPublishOutcome) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 40, 4, 7);
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(3));
  for (const JournalRecord& rec : schedule) {
    if (rec.cmd.type != BrokerCommandType::kPublish) {
      fleet.apply(rec);
      continue;
    }
    const std::vector<SubscriberId> cold = fleet.interested(rec.cmd.point);
    const FleetPublishOutcome out = fleet.apply(rec);
    ASSERT_TRUE(std::equal(out.interested.begin(), out.interested.end(),
                           cold.begin(), cold.end()));
  }
}

// Clone pattern, shard level: a late joiner bootstraps from
// state_reply (snapshot-at-seq + buffered updates), follows the live
// stream, and is promoted into the shard after a kill without desyncing
// the fleet digest.
TEST(FleetCatchup, LateJoinerStreamsAndPromotes) {
  const Scenario sc = MakeStockScenario(60, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 150, 4, 7);
  const BrokerOptions bopts = SmallBrokerOptions();

  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(3));
  std::vector<std::ostringstream> disks(3);
  for (std::size_t k = 0; k < 3; ++k)
    fleet.set_shard_journal(k, &disks[k]);
  FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, bopts);

  std::size_t i = 0;
  for (; i < 60; ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }

  // Late joiner for shard 1, mid-stream: state-request/state-reply lands
  // it at the shard's exact seq.
  const FleetStateReply reply = fleet.state_reply(1);
  EXPECT_EQ(reply.shard, 1);
  ShardReplica standby(reply, *sc.pub, sc.net.graph, bopts);
  EXPECT_EQ(standby.shard(), 1);
  ASSERT_EQ(standby.seq(), fleet.shard_seq(1));

  fleet.attach_replica(1, &standby);
  EXPECT_EQ(fleet.replica(1), &standby);
  for (; i < 120; ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  // The follower stayed in lock-step with the live stream.
  ASSERT_EQ(standby.seq(), fleet.shard_seq(1));
  EXPECT_EQ(standby.broker().state_digest(), fleet.shard(1).state_digest());

  // Primary dies; the standby takes over through the journal handoff.
  fleet.kill_shard(1);
  EXPECT_FALSE(fleet.shard_alive(1));
  EXPECT_THROW(fleet.shard(1), std::logic_error);
  EXPECT_THROW(fleet.apply(schedule[i]), std::logic_error);

  fleet.promote(1, std::move(standby), ParseJournal(disks[1].str()));
  ASSERT_TRUE(fleet.shard_alive(1));
  EXPECT_EQ(fleet.shard(1).seq(), fleet.shard_seq(1));

  for (; i < schedule.size(); ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  EXPECT_EQ(fleet.state_digest(), oracle.state_digest());
}

// A standby that never followed the live stream catches up purely from
// the durable journal tail during promotion.
TEST(FleetCatchup, ColdStandbyCatchesUpFromJournalTail) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 100, 4, 7);
  const BrokerOptions bopts = SmallBrokerOptions();

  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(2));
  std::vector<std::ostringstream> disks(2);
  for (std::size_t k = 0; k < 2; ++k)
    fleet.set_shard_journal(k, &disks[k]);
  FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, bopts);

  std::size_t i = 0;
  for (; i < 50; ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  ShardReplica standby(fleet.state_reply(0), *sc.pub, sc.net.graph, bopts);
  const std::uint64_t standby_seq = standby.seq();

  // The shard moves on without the standby: it is now behind.
  for (; i < 80; ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  ASSERT_EQ(standby.seq(), standby_seq);
  ASSERT_LT(standby.seq(), fleet.shard_seq(0));

  fleet.kill_shard(0);
  fleet.promote(0, std::move(standby), ParseJournal(disks[0].str()));
  ASSERT_EQ(fleet.shard(0).seq(), fleet.shard_seq(0));

  for (; i < schedule.size(); ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  EXPECT_EQ(fleet.state_digest(), oracle.state_digest());
}

// The promote.journal_handoff fail point kills the standby mid-handoff;
// the cold snapshot+journal fallback still restores the shard and the
// fleet digest never desyncs.
TEST(FleetChaos, HandoffCrashFallsBackToColdRecovery) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 100, 4, 7);
  const BrokerOptions bopts = SmallBrokerOptions();

  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(3));
  std::vector<std::ostringstream> disks(3);
  for (std::size_t k = 0; k < 3; ++k)
    fleet.set_shard_journal(k, &disks[k]);
  FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, bopts);

  std::size_t i = 0;
  for (; i < 70; ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  const FleetCheckpoint cp = fleet.checkpoint();

  ShardReplica standby(fleet.state_reply(2), *sc.pub, sc.net.graph, bopts);
  fleet.kill_shard(2);
  const std::vector<JournalRecord> tail = ParseJournal(disks[2].str());

  FailPoints::Instance().clear();
  FailPoints::Instance().configure("promote.journal_handoff=crash*1");
  EXPECT_THROW(fleet.promote(2, std::move(standby), tail), InjectedCrash);
  FailPoints::Instance().clear();
  EXPECT_FALSE(fleet.shard_alive(2));  // the standby died, the shard stayed down

  fleet.recover_shard(2, cp.shard_snapshots[2], tail);
  ASSERT_TRUE(fleet.shard_alive(2));
  ASSERT_EQ(fleet.shard(2).seq(), fleet.shard_seq(2));

  for (; i < schedule.size(); ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  EXPECT_EQ(fleet.state_digest(), oracle.state_digest());
}

// The scripted adversary: seeded kill/promote cycles with the fail point
// armed on some handoffs, checked against the oracle after every cycle.
TEST(FleetChaos, PromotionCyclesStayBitIdentical) {
  PromotionChaosOptions opts;
  opts.num_shards = 3;
  opts.num_events = 200;
  opts.churn_every = 4;
  opts.cycles = 18;
  opts.snapshot_every = 40;
  opts.broker = SmallBrokerOptions();

  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 61);
  const PromotionChaosReport r =
      RunPromotionChaos(sc.net, sc.workload, *sc.pub, opts);

  EXPECT_EQ(r.cycles, 18u);
  EXPECT_GT(r.standbys_built, 0u);
  EXPECT_GT(r.promotions, 0u);
  EXPECT_GE(r.handoff_crashes, 1u);  // the fail point actually fired
  EXPECT_EQ(r.shard_recoveries, r.handoff_crashes);
  EXPECT_GT(r.digest_checks, 0u);
  EXPECT_EQ(r.digest_mismatches, 0u);
  EXPECT_EQ(r.final_seq, r.commands);
  EXPECT_TRUE(r.digests_match);
  EXPECT_TRUE(r.ok());
  // The harness disarms the global registry behind itself.
  EXPECT_FALSE(FailPoints::Instance().active());

  const std::string report = FormatPromotionChaosReport(r);
  EXPECT_NE(report.find("PASS"), std::string::npos);
}

// Clone pattern, fleet level: manifest + shard snapshots + shard journals
// rebuild the fleet, and replaying the fleet journal tail lands it
// bit-identical to the fleet that never restarted.
TEST(FleetRecover, CheckpointRoundTripResumesBitIdentical) {
  const Scenario sc = MakeStockScenario(60, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 140, 4, 7);
  const FleetOptions fopts = SmallFleetOptions(3);

  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, fopts);
  std::ostringstream fleet_disk;
  fleet.set_fleet_journal(&fleet_disk);
  std::vector<std::ostringstream> disks(3);
  for (std::size_t k = 0; k < 3; ++k)
    fleet.set_shard_journal(k, &disks[k]);

  for (std::size_t i = 0; i < 100; ++i) fleet.apply(schedule[i]);
  const FleetCheckpoint cp = fleet.checkpoint();
  ASSERT_EQ(cp.manifest.seq, 100u);
  ASSERT_EQ(cp.manifest.shards.size(), 3u);

  // The manifest survives serialization byte-exactly.
  std::ostringstream ms;
  WriteFleetManifest(ms, cp.manifest);
  std::istringstream mi(ms.str());
  const FleetManifest manifest = ReadFleetManifest(mi);
  ASSERT_EQ(manifest.seq, cp.manifest.seq);
  ASSERT_EQ(manifest.match_chain, cp.manifest.match_chain);
  ASSERT_EQ(manifest.shards.size(), cp.manifest.shards.size());
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(manifest.shards[k].seq, cp.manifest.shards[k].seq);
    EXPECT_EQ(manifest.shards[k].global_ids, cp.manifest.shards[k].global_ids);
  }

  // The live fleet keeps going past the checkpoint...
  for (std::size_t i = 100; i < schedule.size(); ++i) fleet.apply(schedule[i]);

  // ...and the recovered fleet catches up through the fleet journal tail.
  std::vector<std::vector<JournalRecord>> shard_journals;
  shard_journals.reserve(3);
  for (std::size_t k = 0; k < 3; ++k)
    shard_journals.push_back(ParseJournal(disks[k].str()));
  auto resumed = BrokerFleet::Recover(manifest, cp.shard_snapshots,
                                      shard_journals, *sc.pub, sc.net.graph,
                                      fopts);
  ASSERT_EQ(resumed->seq(), 100u);
  ASSERT_EQ(resumed->state_digest(),
            FleetStateDigest(100, resumed->workload(), manifest.match_chain));

  for (const JournalRecord& rec : ParseJournal(fleet_disk.str()))
    if (rec.seq > manifest.seq) resumed->apply(rec);

  EXPECT_EQ(resumed->seq(), fleet.seq());
  EXPECT_EQ(resumed->match_chain(), fleet.match_chain());
  EXPECT_EQ(resumed->state_digest(), fleet.state_digest());
  EXPECT_EQ(resumed->live_subscribers(), fleet.live_subscribers());
}

// A checkpoint taken while stalled would double-apply the pending record
// on replay; the fleet refuses to take one.
TEST(FleetRecover, CheckpointWhileStalledThrows) {
  const Scenario sc = MakeStockScenario(40, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 40, 4, 7);
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(2));
  std::vector<std::ostringstream> disks(2);
  for (std::size_t k = 0; k < 2; ++k)
    fleet.set_shard_journal(k, &disks[k]);

  for (std::size_t i = 0; i < 20; ++i) fleet.apply(schedule[i]);

  FailPoints::Instance().clear();
  FailPoints::Instance().configure("journal.flush=error*12");
  std::size_t i = 20;
  bool stalled = false;
  for (; i < schedule.size() && !stalled; ++i) {
    try {
      fleet.apply(schedule[i]);
    } catch (const FleetDegradedError&) {
      stalled = true;
    }
  }
  FailPoints::Instance().clear();
  ASSERT_TRUE(stalled);
  EXPECT_THROW(fleet.checkpoint(), std::logic_error);
  ASSERT_TRUE(fleet.heal());
  const FleetCheckpoint cp = fleet.checkpoint();  // healthy again
  EXPECT_EQ(cp.manifest.seq, fleet.seq());
}

// Degraded-shard stall and heal: the record left pending on the degraded
// shard completes through heal() and the stream continues with no digest
// divergence — degraded read-only mode is not terminal for the fleet.
TEST(FleetHeal, StallThenHealMatchesOracle) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 80, 4, 7);
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(2));
  std::vector<std::ostringstream> disks(2);
  for (std::size_t k = 0; k < 2; ++k)
    fleet.set_shard_journal(k, &disks[k]);

  std::size_t i = 0;
  for (; i < 40; ++i) fleet.apply(schedule[i]);

  FailPoints::Instance().clear();
  FailPoints::Instance().configure("journal.flush=error*12");
  bool stalled = false;
  std::size_t stalled_at = 0;
  for (; i < schedule.size() && !stalled; ++i) {
    try {
      fleet.apply(schedule[i]);
    } catch (const FleetDegradedError&) {
      stalled = true;
      stalled_at = i;  // pending inside the fleet; do not re-apply
    }
  }
  ASSERT_TRUE(stalled);
  EXPECT_TRUE(fleet.stalled());
  const std::uint64_t seq_before = fleet.seq();
  EXPECT_EQ(seq_before, schedule[stalled_at].seq - 1);  // no seq consumed

  // Every further mutation is rejected while stalled; cold reads survive.
  EXPECT_THROW(fleet.apply(schedule[i]), FleetDegradedError);
  for (std::size_t k = stalled_at; k < schedule.size(); ++k)
    if (schedule[k].cmd.type == BrokerCommandType::kPublish) {
      fleet.interested(schedule[k].cmd.point);
      break;
    }

  // Fault cleared: the heal probe completes the pending record.
  FailPoints::Instance().clear();
  ASSERT_TRUE(fleet.heal());
  EXPECT_FALSE(fleet.stalled());
  EXPECT_EQ(fleet.seq(), seq_before + 1);

  for (; i < schedule.size(); ++i) fleet.apply(schedule[i]);

  // The oracle never saw the fault; the digests still agree.
  FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, SmallBrokerOptions());
  for (const JournalRecord& rec : schedule) oracle.apply(rec);
  EXPECT_EQ(fleet.seq(), oracle.seq());
  EXPECT_EQ(fleet.state_digest(), oracle.state_digest());
}

// The fleet digest is invariant to the worker thread count: the fan-out
// runs on the pool, the merge is a counting sort, and nothing ordered
// leaks from scheduling.
TEST(FleetDeterminism, ThreadCountInvariantDigest) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 60, 4, 7);
  const auto digest_with = [&](std::size_t shards, int threads) {
    ThreadPool::global().set_num_threads(threads);
    BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph,
                      SmallFleetOptions(shards));
    for (const JournalRecord& rec : schedule) fleet.apply(rec);
    return fleet.state_digest();
  };
  const std::uint64_t base = digest_with(1, 1);
  EXPECT_EQ(digest_with(3, 1), base);
  EXPECT_EQ(digest_with(3, 4), base);
  EXPECT_EQ(digest_with(8, 4), base);
  ThreadPool::global().set_num_threads(1);
}

// The serve daemon's deterministic event loop: (due, insertion order)
// execution, periodic re-arming, and one-shots alone keeping it alive.
TEST(FleetEventLoop, OrdersTasksByDueTimeThenScheduleOrder) {
  ManualClock clock;
  EventLoop loop(&clock);
  std::vector<std::string> log;
  const auto mark = [&](const std::string& tag) {
    log.push_back(tag + "@" + std::to_string(static_cast<int>(loop.now_ms())));
  };
  loop.every(5, 5, [&] { mark("p"); });
  loop.at(12, [&] { mark("a"); });
  loop.at(5, [&] { mark("b"); });
  loop.at(5, [&] { mark("c"); });
  loop.run();
  // The periodic was scheduled first, so it leads the 5ms tie; its re-armed
  // firing at 10 rides between the one-shots; run() ends after the last
  // one-shot — the 15ms firing never happens.
  const std::vector<std::string> want{"p@5", "b@5", "c@5", "p@10", "a@12"};
  EXPECT_EQ(log, want);
  EXPECT_EQ(clock.now_ms(), 12.0);
}

TEST(FleetEventLoop, PastDueTasksRunAtCurrentTimeAndStopHalts) {
  ManualClock clock;
  clock.advance_to(50.0);
  EventLoop loop(&clock);
  std::vector<double> at;
  loop.at(10, [&] { at.push_back(loop.now_ms()); });  // already in the past
  loop.at(60, [&] {
    at.push_back(loop.now_ms());
    loop.stop();
  });
  loop.at(70, [&] { at.push_back(loop.now_ms()); });  // never runs
  loop.run();
  const std::vector<double> want{50.0, 60.0};
  EXPECT_EQ(at, want);
  EXPECT_TRUE(loop.stopped());

  EXPECT_THROW(loop.every(5, 0, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace pubsub
