// Tests for the sharded broker fleet (src/serve): the tentpole invariant
// — at any shard count the fleet digest is bit-identical to a
// single-broker oracle at every sequence number — plus the clone-pattern
// failover path (late-joiner catch-up, promotion, the
// promote.journal_handoff fail point and the cold-recovery fallback),
// checkpoint/recover round trips, degraded-shard stall/heal, and the
// deterministic event loop that drives the serve daemon.
#include "serve/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "broker/chaos.h"
#include "io/serialize.h"
#include "obs/clock.h"
#include "obs/watchdog.h"
#include "serve/catchup.h"
#include "serve/event_loop.h"
#include "sim/scenario.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace pubsub {
namespace {

BrokerOptions SmallBrokerOptions() {
  BrokerOptions opts;
  opts.group.num_groups = 8;
  opts.group.max_cells = 300;
  return opts;
}

FleetOptions SmallFleetOptions(std::size_t shards) {
  FleetOptions opts;
  opts.num_shards = shards;
  opts.broker = SmallBrokerOptions();
  return opts;
}

std::vector<JournalRecord> ParseJournal(const std::string& bytes) {
  std::istringstream is(bytes);
  return ReadJournalLenient(is).journal.records;
}

TEST(FleetPartition, StableHashRoutingCoversEveryShard) {
  std::vector<std::size_t> histogram(5, 0);
  for (SubscriberId id = 0; id < 1000; ++id) {
    EXPECT_EQ(FleetShardOf(id, 1), 0u);
    const std::size_t k = FleetShardOf(id, 5);
    ASSERT_LT(k, 5u);
    EXPECT_EQ(k, FleetShardOf(id, 5));  // stable: a pure function of the id
    ++histogram[k];
  }
  // splitmix64 spreads sequential ids: no shard is starved or dominant.
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_GT(histogram[k], 100u) << "shard " << k << " starved";
    EXPECT_LT(histogram[k], 350u) << "shard " << k << " dominant";
  }
}

TEST(FleetPartition, ChainFoldIsSensitiveToSeqAndMembers) {
  const std::vector<SubscriberId> a{1, 5, 9};
  const std::vector<SubscriberId> b{1, 5, 10};
  const std::uint64_t h = FleetChainFold(0, 3, a);
  EXPECT_NE(h, FleetChainFold(0, 4, a));  // seq folds in
  EXPECT_NE(h, FleetChainFold(0, 3, b));  // membership folds in
  EXPECT_NE(h, FleetChainFold(1, 3, a));  // the chain itself folds in
  EXPECT_EQ(h, FleetChainFold(0, 3, a));  // and it is a pure function
}

// The tentpole invariant: the fleet digest, match chain and every merged
// interested set are bit-identical to the single-broker oracle at every
// sequence number, for every shard count.
void ExpectOracleParity(std::size_t shards) {
  const Scenario sc = MakeStockScenario(60, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 120, 4, 7);

  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph,
                    SmallFleetOptions(shards));
  FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, SmallBrokerOptions());
  for (const JournalRecord& rec : schedule) {
    if (rec.cmd.type == BrokerCommandType::kPublish) {
      const FleetPublishOutcome out = fleet.apply(rec);
      oracle.apply(rec);
      const auto want = oracle.last_interested();
      ASSERT_TRUE(std::equal(out.interested.begin(), out.interested.end(),
                             want.begin(), want.end()))
          << "merged interested set diverged at seq " << rec.seq;
      ASSERT_TRUE(std::is_sorted(out.interested.begin(), out.interested.end()));
    } else {
      fleet.apply(rec);
      oracle.apply(rec);
    }
    ASSERT_EQ(fleet.seq(), oracle.seq());
    ASSERT_EQ(fleet.match_chain(), oracle.match_chain()) << "seq " << rec.seq;
    ASSERT_EQ(fleet.state_digest(), oracle.state_digest())
        << "seq " << rec.seq;
  }
  EXPECT_EQ(fleet.seq(), schedule.size());
  // The logical table mirrors the oracle's slot-for-slot (tombstones
  // included; live_subscribers counts only the non-tombstoned ones).
  EXPECT_EQ(fleet.workload().num_subscribers(),
            oracle.broker().workload().num_subscribers());
  EXPECT_LE(fleet.live_subscribers(), fleet.workload().num_subscribers());
}

TEST(Fleet, OracleParityOneShard) { ExpectOracleParity(1); }
TEST(Fleet, OracleParityTwoShards) { ExpectOracleParity(2); }
TEST(Fleet, OracleParityThreeShards) { ExpectOracleParity(3); }
TEST(Fleet, OracleParityEightShards) { ExpectOracleParity(8); }

// The cold read path serves the same merged set as the fan-out path.
TEST(Fleet, ColdInterestedMatchesPublishOutcome) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 40, 4, 7);
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(3));
  for (const JournalRecord& rec : schedule) {
    if (rec.cmd.type != BrokerCommandType::kPublish) {
      fleet.apply(rec);
      continue;
    }
    const std::vector<SubscriberId> cold = fleet.interested(rec.cmd.point);
    const FleetPublishOutcome out = fleet.apply(rec);
    ASSERT_TRUE(std::equal(out.interested.begin(), out.interested.end(),
                           cold.begin(), cold.end()));
  }
}

// Clone pattern, shard level: a late joiner bootstraps from
// state_reply (snapshot-at-seq + buffered updates), follows the live
// stream, and is promoted into the shard after a kill without desyncing
// the fleet digest.
TEST(FleetCatchup, LateJoinerStreamsAndPromotes) {
  const Scenario sc = MakeStockScenario(60, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 150, 4, 7);
  const BrokerOptions bopts = SmallBrokerOptions();

  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(3));
  std::vector<std::ostringstream> disks(3);
  for (std::size_t k = 0; k < 3; ++k)
    fleet.set_shard_journal(k, &disks[k]);
  FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, bopts);

  std::size_t i = 0;
  for (; i < 60; ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }

  // Late joiner for shard 1, mid-stream: state-request/state-reply lands
  // it at the shard's exact seq.
  const FleetStateReply reply = fleet.state_reply(1);
  EXPECT_EQ(reply.shard, 1);
  ShardReplica standby(reply, *sc.pub, sc.net.graph, bopts);
  EXPECT_EQ(standby.shard(), 1);
  ASSERT_EQ(standby.seq(), fleet.shard_seq(1));

  fleet.attach_replica(1, &standby);
  EXPECT_EQ(fleet.replica(1), &standby);
  for (; i < 120; ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  // The follower stayed in lock-step with the live stream.
  ASSERT_EQ(standby.seq(), fleet.shard_seq(1));
  EXPECT_EQ(standby.broker().state_digest(), fleet.shard(1).state_digest());

  // Primary dies; the standby takes over through the journal handoff.
  fleet.kill_shard(1);
  EXPECT_FALSE(fleet.shard_alive(1));
  EXPECT_THROW(fleet.shard(1), std::logic_error);
  EXPECT_THROW(fleet.apply(schedule[i]), std::logic_error);

  fleet.promote(1, std::move(standby), ParseJournal(disks[1].str()));
  ASSERT_TRUE(fleet.shard_alive(1));
  EXPECT_EQ(fleet.shard(1).seq(), fleet.shard_seq(1));

  for (; i < schedule.size(); ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  EXPECT_EQ(fleet.state_digest(), oracle.state_digest());
}

// A standby that never followed the live stream catches up purely from
// the durable journal tail during promotion.
TEST(FleetCatchup, ColdStandbyCatchesUpFromJournalTail) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 100, 4, 7);
  const BrokerOptions bopts = SmallBrokerOptions();

  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(2));
  std::vector<std::ostringstream> disks(2);
  for (std::size_t k = 0; k < 2; ++k)
    fleet.set_shard_journal(k, &disks[k]);
  FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, bopts);

  std::size_t i = 0;
  for (; i < 50; ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  ShardReplica standby(fleet.state_reply(0), *sc.pub, sc.net.graph, bopts);
  const std::uint64_t standby_seq = standby.seq();

  // The shard moves on without the standby: it is now behind.
  for (; i < 80; ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  ASSERT_EQ(standby.seq(), standby_seq);
  ASSERT_LT(standby.seq(), fleet.shard_seq(0));

  fleet.kill_shard(0);
  fleet.promote(0, std::move(standby), ParseJournal(disks[0].str()));
  ASSERT_EQ(fleet.shard(0).seq(), fleet.shard_seq(0));

  for (; i < schedule.size(); ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  EXPECT_EQ(fleet.state_digest(), oracle.state_digest());
}

// The promote.journal_handoff fail point kills the standby mid-handoff;
// the cold snapshot+journal fallback still restores the shard and the
// fleet digest never desyncs.
TEST(FleetChaos, HandoffCrashFallsBackToColdRecovery) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 100, 4, 7);
  const BrokerOptions bopts = SmallBrokerOptions();

  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(3));
  std::vector<std::ostringstream> disks(3);
  for (std::size_t k = 0; k < 3; ++k)
    fleet.set_shard_journal(k, &disks[k]);
  FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, bopts);

  std::size_t i = 0;
  for (; i < 70; ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  const FleetCheckpoint cp = fleet.checkpoint();

  ShardReplica standby(fleet.state_reply(2), *sc.pub, sc.net.graph, bopts);
  fleet.kill_shard(2);
  const std::vector<JournalRecord> tail = ParseJournal(disks[2].str());

  FailPoints::Instance().clear();
  FailPoints::Instance().configure("promote.journal_handoff=crash*1");
  EXPECT_THROW(fleet.promote(2, std::move(standby), tail), InjectedCrash);
  FailPoints::Instance().clear();
  EXPECT_FALSE(fleet.shard_alive(2));  // the standby died, the shard stayed down

  fleet.recover_shard(2, cp.shard_snapshots[2], tail);
  ASSERT_TRUE(fleet.shard_alive(2));
  ASSERT_EQ(fleet.shard(2).seq(), fleet.shard_seq(2));

  for (; i < schedule.size(); ++i) {
    fleet.apply(schedule[i]);
    oracle.apply(schedule[i]);
  }
  EXPECT_EQ(fleet.state_digest(), oracle.state_digest());
}

// The scripted adversary: seeded kill/promote cycles with the fail point
// armed on some handoffs, checked against the oracle after every cycle.
TEST(FleetChaos, PromotionCyclesStayBitIdentical) {
  PromotionChaosOptions opts;
  opts.num_shards = 3;
  opts.num_events = 200;
  opts.churn_every = 4;
  opts.cycles = 18;
  opts.snapshot_every = 40;
  opts.broker = SmallBrokerOptions();

  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 61);
  const PromotionChaosReport r =
      RunPromotionChaos(sc.net, sc.workload, *sc.pub, opts);

  EXPECT_EQ(r.cycles, 18u);
  EXPECT_GT(r.standbys_built, 0u);
  EXPECT_GT(r.promotions, 0u);
  EXPECT_GE(r.handoff_crashes, 1u);  // the fail point actually fired
  EXPECT_EQ(r.shard_recoveries, r.handoff_crashes);
  EXPECT_GT(r.digest_checks, 0u);
  EXPECT_EQ(r.digest_mismatches, 0u);
  EXPECT_EQ(r.final_seq, r.commands);
  EXPECT_TRUE(r.digests_match);
  EXPECT_TRUE(r.ok());
  // The harness disarms the global registry behind itself.
  EXPECT_FALSE(FailPoints::Instance().active());

  const std::string report = FormatPromotionChaosReport(r);
  EXPECT_NE(report.find("PASS"), std::string::npos);
}

// Clone pattern, fleet level: manifest + shard snapshots + shard journals
// rebuild the fleet, and replaying the fleet journal tail lands it
// bit-identical to the fleet that never restarted.
TEST(FleetRecover, CheckpointRoundTripResumesBitIdentical) {
  const Scenario sc = MakeStockScenario(60, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 140, 4, 7);
  const FleetOptions fopts = SmallFleetOptions(3);

  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, fopts);
  std::ostringstream fleet_disk;
  fleet.set_fleet_journal(&fleet_disk);
  std::vector<std::ostringstream> disks(3);
  for (std::size_t k = 0; k < 3; ++k)
    fleet.set_shard_journal(k, &disks[k]);

  for (std::size_t i = 0; i < 100; ++i) fleet.apply(schedule[i]);
  const FleetCheckpoint cp = fleet.checkpoint();
  ASSERT_EQ(cp.manifest.seq, 100u);
  ASSERT_EQ(cp.manifest.shards.size(), 3u);

  // The manifest survives serialization byte-exactly.
  std::ostringstream ms;
  WriteFleetManifest(ms, cp.manifest);
  std::istringstream mi(ms.str());
  const FleetManifest manifest = ReadFleetManifest(mi);
  ASSERT_EQ(manifest.seq, cp.manifest.seq);
  ASSERT_EQ(manifest.match_chain, cp.manifest.match_chain);
  ASSERT_EQ(manifest.shards.size(), cp.manifest.shards.size());
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(manifest.shards[k].seq, cp.manifest.shards[k].seq);
    EXPECT_EQ(manifest.shards[k].global_ids, cp.manifest.shards[k].global_ids);
  }

  // The live fleet keeps going past the checkpoint...
  for (std::size_t i = 100; i < schedule.size(); ++i) fleet.apply(schedule[i]);

  // ...and the recovered fleet catches up through the fleet journal tail.
  std::vector<std::vector<JournalRecord>> shard_journals;
  shard_journals.reserve(3);
  for (std::size_t k = 0; k < 3; ++k)
    shard_journals.push_back(ParseJournal(disks[k].str()));
  auto resumed = BrokerFleet::Recover(manifest, cp.shard_snapshots,
                                      shard_journals, *sc.pub, sc.net.graph,
                                      fopts);
  ASSERT_EQ(resumed->seq(), 100u);
  ASSERT_EQ(resumed->state_digest(),
            FleetStateDigest(100, resumed->workload(), manifest.match_chain));

  for (const JournalRecord& rec : ParseJournal(fleet_disk.str()))
    if (rec.seq > manifest.seq) resumed->apply(rec);

  EXPECT_EQ(resumed->seq(), fleet.seq());
  EXPECT_EQ(resumed->match_chain(), fleet.match_chain());
  EXPECT_EQ(resumed->state_digest(), fleet.state_digest());
  EXPECT_EQ(resumed->live_subscribers(), fleet.live_subscribers());
}

// A checkpoint taken while stalled would double-apply the pending record
// on replay; the fleet refuses to take one.
TEST(FleetRecover, CheckpointWhileStalledThrows) {
  const Scenario sc = MakeStockScenario(40, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 40, 4, 7);
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(2));
  std::vector<std::ostringstream> disks(2);
  for (std::size_t k = 0; k < 2; ++k)
    fleet.set_shard_journal(k, &disks[k]);

  for (std::size_t i = 0; i < 20; ++i) fleet.apply(schedule[i]);

  FailPoints::Instance().clear();
  FailPoints::Instance().configure("journal.flush=error*12");
  std::size_t i = 20;
  bool stalled = false;
  for (; i < schedule.size() && !stalled; ++i) {
    try {
      fleet.apply(schedule[i]);
    } catch (const FleetDegradedError&) {
      stalled = true;
    }
  }
  FailPoints::Instance().clear();
  ASSERT_TRUE(stalled);
  EXPECT_THROW(fleet.checkpoint(), std::logic_error);
  ASSERT_TRUE(fleet.heal());
  const FleetCheckpoint cp = fleet.checkpoint();  // healthy again
  EXPECT_EQ(cp.manifest.seq, fleet.seq());
}

// Degraded-shard stall and heal: the record left pending on the degraded
// shard completes through heal() and the stream continues with no digest
// divergence — degraded read-only mode is not terminal for the fleet.
TEST(FleetHeal, StallThenHealMatchesOracle) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 80, 4, 7);
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(2));
  std::vector<std::ostringstream> disks(2);
  for (std::size_t k = 0; k < 2; ++k)
    fleet.set_shard_journal(k, &disks[k]);

  std::size_t i = 0;
  for (; i < 40; ++i) fleet.apply(schedule[i]);

  FailPoints::Instance().clear();
  FailPoints::Instance().configure("journal.flush=error*12");
  bool stalled = false;
  std::size_t stalled_at = 0;
  for (; i < schedule.size() && !stalled; ++i) {
    try {
      fleet.apply(schedule[i]);
    } catch (const FleetDegradedError&) {
      stalled = true;
      stalled_at = i;  // pending inside the fleet; do not re-apply
    }
  }
  ASSERT_TRUE(stalled);
  EXPECT_TRUE(fleet.stalled());
  const std::uint64_t seq_before = fleet.seq();
  EXPECT_EQ(seq_before, schedule[stalled_at].seq - 1);  // no seq consumed

  // Every further mutation is rejected while stalled; cold reads survive.
  EXPECT_THROW(fleet.apply(schedule[i]), FleetDegradedError);
  for (std::size_t k = stalled_at; k < schedule.size(); ++k)
    if (schedule[k].cmd.type == BrokerCommandType::kPublish) {
      fleet.interested(schedule[k].cmd.point);
      break;
    }

  // Fault cleared: the heal probe completes the pending record.
  FailPoints::Instance().clear();
  ASSERT_TRUE(fleet.heal());
  EXPECT_FALSE(fleet.stalled());
  EXPECT_EQ(fleet.seq(), seq_before + 1);

  for (; i < schedule.size(); ++i) fleet.apply(schedule[i]);

  // The oracle never saw the fault; the digests still agree.
  FleetOracle oracle(sc.workload, *sc.pub, sc.net.graph, SmallBrokerOptions());
  for (const JournalRecord& rec : schedule) oracle.apply(rec);
  EXPECT_EQ(fleet.seq(), oracle.seq());
  EXPECT_EQ(fleet.state_digest(), oracle.state_digest());
}

// The fleet digest is invariant to the worker thread count: the fan-out
// runs on the pool, the merge is a counting sort, and nothing ordered
// leaks from scheduling.
TEST(FleetDeterminism, ThreadCountInvariantDigest) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 60, 4, 7);
  const auto digest_with = [&](std::size_t shards, int threads) {
    ThreadPool::global().set_num_threads(threads);
    BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph,
                      SmallFleetOptions(shards));
    for (const JournalRecord& rec : schedule) fleet.apply(rec);
    return fleet.state_digest();
  };
  const std::uint64_t base = digest_with(1, 1);
  EXPECT_EQ(digest_with(3, 1), base);
  EXPECT_EQ(digest_with(3, 4), base);
  EXPECT_EQ(digest_with(8, 4), base);
  ThreadPool::global().set_num_threads(1);
}

// The serve daemon's deterministic event loop: (due, insertion order)
// execution, periodic re-arming, and one-shots alone keeping it alive.
TEST(FleetEventLoop, OrdersTasksByDueTimeThenScheduleOrder) {
  ManualClock clock;
  EventLoop loop(&clock);
  std::vector<std::string> log;
  const auto mark = [&](const std::string& tag) {
    log.push_back(tag + "@" + std::to_string(static_cast<int>(loop.now_ms())));
  };
  loop.every(5, 5, [&] { mark("p"); });
  loop.at(12, [&] { mark("a"); });
  loop.at(5, [&] { mark("b"); });
  loop.at(5, [&] { mark("c"); });
  loop.run();
  // The periodic was scheduled first, so it leads the 5ms tie; its re-armed
  // firing at 10 rides between the one-shots; run() ends after the last
  // one-shot — the 15ms firing never happens.
  const std::vector<std::string> want{"p@5", "b@5", "c@5", "p@10", "a@12"};
  EXPECT_EQ(log, want);
  EXPECT_EQ(clock.now_ms(), 12.0);
}

TEST(FleetEventLoop, PastDueTasksRunAtCurrentTimeAndStopHalts) {
  ManualClock clock;
  clock.advance_to(50.0);
  EventLoop loop(&clock);
  std::vector<double> at;
  loop.at(10, [&] { at.push_back(loop.now_ms()); });  // already in the past
  loop.at(60, [&] {
    at.push_back(loop.now_ms());
    loop.stop();
  });
  loop.at(70, [&] { at.push_back(loop.now_ms()); });  // never runs
  loop.run();
  const std::vector<double> want{50.0, 60.0};
  EXPECT_EQ(at, want);
  EXPECT_TRUE(loop.stopped());

  EXPECT_THROW(loop.every(5, 0, [] {}), std::invalid_argument);
}

// ---- causal cross-shard tracing --------------------------------------------

// A traced fleet with ManualClock trace time: every span is deterministic
// and collect_spans() reconstructs the full causal tree per publish.
FleetOptions TracedFleetOptions(std::size_t shards, ManualClock* clock) {
  FleetOptions opts = SmallFleetOptions(shards);
  opts.broker.obs.trace_sample = 1;
  opts.broker.obs.trace_capacity = 8192;
  opts.broker.obs.trace_clock = clock;
  opts.trace_clock = clock;
  return opts;
}

// Every sampled publish must reconstruct a complete causal tree: the three
// fleet-coordinator stages plus the full broker pipeline (match, group
// selection, delivery plan, journal flush) on EVERY shard the publish
// fanned out to — the issue's >= 99% completeness acceptance bar, held at
// 100% here.
void ExpectCompleteSpanTrees(std::size_t shards) {
  const Scenario sc = MakeStockScenario(60, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 80, 4, 7);
  ManualClock clock;
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph,
                    TracedFleetOptions(shards, &clock), &clock);
  for (const JournalRecord& rec : schedule) {
    clock.advance(1.0);
    fleet.apply(rec);
  }

  std::map<std::uint64_t, std::vector<TraceSpan>> trees;
  for (const TraceSpan& s : fleet.collect_spans())
    trees[s.trace_id].push_back(s);

  std::size_t publishes = 0;
  std::size_t complete = 0;
  for (const JournalRecord& rec : schedule) {
    if (rec.cmd.type != BrokerCommandType::kPublish) continue;
    ++publishes;
    const std::vector<TraceSpan>& tree = trees[rec.seq];
    std::size_t fleet_stages = 0;
    std::map<PublishStage, std::set<std::int32_t>> shard_stages;
    for (const TraceSpan& s : tree) {
      if (s.shard < 0) {
        // Coordinator spans carry the fleet seq; shard spans carry the
        // shard-local seq (which lags when churn routed elsewhere) — the
        // shared trace_id is what stitches the tree together.
        EXPECT_EQ(s.seq, rec.seq);
        EXPECT_TRUE(s.stage == PublishStage::kFleetFanOut ||
                    s.stage == PublishStage::kFleetMerge ||
                    s.stage == PublishStage::kFleetDeliver);
        ++fleet_stages;
      } else {
        shard_stages[s.stage].insert(s.shard);
      }
    }
    const bool all_shards =
        shard_stages[PublishStage::kMatch].size() == shards &&
        shard_stages[PublishStage::kGroupSelection].size() == shards &&
        shard_stages[PublishStage::kDeliveryPlan].size() == shards &&
        shard_stages[PublishStage::kJournalFlush].size() == shards;
    if (fleet_stages == 3 && all_shards) ++complete;
  }
  ASSERT_GT(publishes, 0u);
  EXPECT_EQ(complete, publishes);
  EXPECT_EQ(fleet.trace_dropped(), 0u);
}

TEST(FleetTrace, SpanTreesCompleteOneShard) { ExpectCompleteSpanTrees(1); }
TEST(FleetTrace, SpanTreesCompleteTwoShards) { ExpectCompleteSpanTrees(2); }
TEST(FleetTrace, SpanTreesCompleteThreeShards) { ExpectCompleteSpanTrees(3); }
TEST(FleetTrace, SpanTreesCompleteEightShards) { ExpectCompleteSpanTrees(8); }

TEST(FleetTrace, TraceJsonDumpCarriesEveryStage) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 40, 4, 7);
  ManualClock clock;
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph,
                    TracedFleetOptions(2, &clock), &clock);
  for (const JournalRecord& rec : schedule) fleet.apply(rec);

  std::ostringstream os;
  WriteTraceJson(os, fleet.collect_spans(), fleet.trace_recorded(),
                 fleet.trace_dropped());
  const std::string text = os.str();
  EXPECT_NE(text.find("\"recorded\":"), std::string::npos);
  EXPECT_NE(text.find("\"dropped\":0"), std::string::npos);
  for (const char* stage : {"\"fleet_fanout\"", "\"fleet_merge\"",
                            "\"fleet_deliver\"", "\"match\"",
                            "\"group_selection\"", "\"delivery_plan\"",
                            "\"journal_flush\""})
    EXPECT_NE(text.find(stage), std::string::npos) << stage;
  // Coordinator spans carry shard -1; fanned-out spans the shard id.
  EXPECT_NE(text.find("\"shard\":-1"), std::string::npos);
  EXPECT_NE(text.find("\"shard\":1"), std::string::npos);
}

// An attached standby rides the same causal tree: its catch-up applies
// carry the fleet trace id as replica_apply spans.
TEST(FleetTrace, AttachedReplicaSpansCarryFleetTraceId) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 60, 4, 7);
  ManualClock clock;
  const FleetOptions fopts = TracedFleetOptions(2, &clock);
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, fopts, &clock);
  const std::size_t half = schedule.size() / 2;
  for (std::size_t i = 0; i < half; ++i) fleet.apply(schedule[i]);

  BrokerOptions standby_opts = fopts.broker;
  standby_opts.obs.metrics = nullptr;
  ShardReplica standby(fleet.state_reply(0), *sc.pub, sc.net.graph,
                       standby_opts, &clock);
  fleet.attach_replica(0, &standby);
  for (std::size_t i = half; i < schedule.size(); ++i) fleet.apply(schedule[i]);

  const std::vector<TraceSpan> replica_spans = standby.trace().spans();
  ASSERT_FALSE(replica_spans.empty());
  for (const TraceSpan& s : replica_spans) {
    EXPECT_EQ(s.stage, PublishStage::kReplicaApply);
    EXPECT_EQ(s.shard, 0);
    EXPECT_NE(s.trace_id, 0u);
  }
  // collect_spans folds the attached standby's ring into the fleet dump.
  std::size_t replica_in_dump = 0;
  for (const TraceSpan& s : fleet.collect_spans())
    if (s.stage == PublishStage::kReplicaApply) ++replica_in_dump;
  EXPECT_EQ(replica_in_dump, replica_spans.size());
}

// ---- aggregated exposition --------------------------------------------------

// The fleet scrape is part of the deterministic surface: same commands,
// different --threads, byte-identical text (the name-collision regression —
// per-shard registries merge under distinct shard labels, never alias).
TEST(FleetScrapeDeterminism, ByteIdenticalAcrossThreadCounts) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 60, 4, 7);
  const auto run = [&](int threads) {
    ThreadPool::global().set_num_threads(threads);
    BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph,
                      SmallFleetOptions(3));
    for (const JournalRecord& rec : schedule) fleet.apply(rec);
    std::ostringstream os;
    WriteMetricsText(os, FleetScrape(fleet, /*include_runtime=*/false));
    return os.str();
  };
  const std::string serial = run(1);
  const std::string parallel = run(4);
  ThreadPool::global().set_num_threads(1);
  EXPECT_EQ(serial, parallel);
  // Every shard's series is present under its own label; the fleet's own
  // registry keeps its unlabeled names.
  EXPECT_NE(serial.find("{shard=\"0\"}"), std::string::npos);
  EXPECT_NE(serial.find("{shard=\"2\"}"), std::string::npos);
  EXPECT_NE(serial.find("fleet_commands_total "), std::string::npos);
}

// ---- watchdog drills against a live fleet -----------------------------------

// The fleet.shard.publish=delay fail point slows shard 0 only; the
// watchdog must flag exactly that shard — and stay silent on the healthy
// prefix of the very same run.
TEST(FleetWatchdog, DelayFailPointFlagsSlowShardHealthyRunSilent) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 120, 4, 7);
  ManualClock clock;
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph,
                    TracedFleetOptions(3, &clock), &clock);
  FleetWatchdog dog(WatchdogOptions{}, &fleet.metrics());
  FailPoints& fp = FailPoints::Instance();
  fp.clear();

  const std::size_t half = schedule.size() / 2;
  for (std::size_t i = 0; i < half; ++i) fleet.apply(schedule[i]);
  // Healthy half: frozen trace clock reads every latency as 0, well under
  // the min_p99_ms floor — no alerts, and a clean audit.
  EXPECT_TRUE(
      dog.check(1.0, fleet.shard_publish_histograms(), 0).empty());
  EXPECT_TRUE(dog.audit(1.0, CollectShardAudit(fleet)).empty());

  fp.configure("fleet.shard.publish=delay:50");
  for (std::size_t i = half; i < schedule.size(); ++i) fleet.apply(schedule[i]);
  fp.clear();

  const std::vector<WatchdogAlert> alerts =
      dog.check(2.0, fleet.shard_publish_histograms(), 0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, WatchdogAlertKind::kSlowShard);
  EXPECT_EQ(alerts[0].shard, 0);
  // The drill only skews latency; state stays convergent.
  EXPECT_TRUE(dog.audit(2.0, CollectShardAudit(fleet)).empty());
}

// An out-of-band mutation on one shard (bypassing the sequenced stream)
// must trip the digest/seq auditor.
TEST(FleetWatchdog, AuditCatchesForcedShardDivergence) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 91);
  const auto schedule = BuildChaosSchedule(sc.net, sc.workload, 40, 4, 7);
  BrokerFleet fleet(sc.workload, *sc.pub, sc.net.graph, SmallFleetOptions(2));
  for (const JournalRecord& rec : schedule) fleet.apply(rec);

  FleetWatchdog dog{WatchdogOptions{}};
  EXPECT_TRUE(dog.audit(1.0, CollectShardAudit(fleet)).empty());

  fleet.shard_for_fault_injection(1).subscribe(
      0, fleet.shard(1).workload().space.domain_rect());

  const std::vector<WatchdogAlert> alerts =
      dog.audit(2.0, CollectShardAudit(fleet));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, WatchdogAlertKind::kDigestDivergence);
  EXPECT_EQ(alerts[0].shard, 1);
}

}  // namespace
}  // namespace pubsub
