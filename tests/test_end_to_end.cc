// Integration tests: the full pipeline (topology → workload → grid →
// clustering → matching → delivery costs) on a reduced-size §5.1 scenario,
// asserting the paper's qualitative findings with generous margins.
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/grid.h"
#include "core/matching.h"
#include "core/noloss.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

namespace pubsub {
namespace {

struct Pipeline {
  explicit Pipeline(std::uint64_t seed, int subs = 400,
                    PublicationHotSpots spots = PublicationHotSpots::kOne)
      : scenario(MakeStockScenario(subs, spots, seed)),
        sim(scenario.net.graph, scenario.workload),
        grid(scenario.workload, *scenario.pub) {
    Rng rng(seed + 1000);
    events = SampleEvents(sim, *scenario.pub, 150, rng);
    base = EvaluateBaselines(sim, events);
  }

  double RunGridAlgo(const std::string& name, std::size_t K, std::size_t cells_cap) {
    const auto cells = grid.top_cells(cells_cap);
    Rng rng(99);
    const Assignment a = GridAlgorithmByName(name).run(cells, K, rng);
    const GridMatcher matcher(grid, a, static_cast<int>(K));
    const ClusteredCosts c = EvaluateMatcher(sim, events, MatcherFn(matcher));
    return ImprovementPercent(c.network, base);
  }

  Scenario scenario;
  DeliverySimulator sim;
  Grid grid;
  std::vector<EventSample> events;
  BaselineCosts base;
};

TEST(EndToEnd, BaselineOrderingHolds) {
  Pipeline p(1);
  EXPECT_GT(p.base.unicast, p.base.ideal);
  EXPECT_GT(p.base.broadcast, p.base.ideal);
}

TEST(EndToEnd, EveryAlgorithmBeatsWorstCaseAndStaysSane) {
  Pipeline p(2);
  for (const GridAlgorithm& algo : StandardGridAlgorithms()) {
    const double improvement = p.RunGridAlgo(algo.name, 40, 1500);
    EXPECT_GT(improvement, -20.0) << algo.name;
    EXPECT_LE(improvement, 100.0) << algo.name;
  }
}

TEST(EndToEnd, MoreGroupsHelpForgy) {
  Pipeline p(3);
  const double k10 = p.RunGridAlgo("forgy", 10, 1500);
  const double k80 = p.RunGridAlgo("forgy", 80, 1500);
  EXPECT_GT(k80, k10 - 5.0);  // allow small noise; trend must be upward
  EXPECT_GT(k80, 20.0);
}

TEST(EndToEnd, IterativeBeatsMstAtEqualBudget) {
  // The paper's core ranking (Fig. 7): iterative clustering above MST.
  Pipeline p(4);
  const double forgy = p.RunGridAlgo("forgy", 60, 1500);
  const double mst = p.RunGridAlgo("mst", 60, 1500);
  EXPECT_GT(forgy, mst);
}

TEST(EndToEnd, NoLossNeverWastesADelivery) {
  Pipeline p(5);
  NoLossOptions opt;
  opt.max_rectangles = 1500;
  opt.iterations = 3;
  opt.intersect_top = 64;
  const NoLossResult r = NoLossCluster(p.scenario.workload, *p.scenario.pub, opt);
  const NoLossMatcher matcher(r, 60);
  const ClusteredCosts c = EvaluateMatcher(p.sim, p.events, MatcherFn(matcher));
  EXPECT_EQ(c.wasted_deliveries, 0u);
  EXPECT_GT(ImprovementPercent(c.network, p.base), 0.0);
}

TEST(EndToEnd, AppLevelCostsTrackNetworkCosts) {
  // §5.2: "application-level multicast results in slightly higher costs,
  // the trend remains the same".
  Pipeline p(6);
  const auto cells = p.grid.top_cells(1500);
  Rng rng(7);
  const Assignment a = GridAlgorithmByName("forgy").run(cells, 60, rng);
  const GridMatcher matcher(p.grid, a, 60);
  const ClusteredCosts c = EvaluateMatcher(p.sim, p.events, MatcherFn(matcher));
  EXPECT_GE(c.applevel, c.network * 0.9);
  EXPECT_GT(ImprovementPercent(c.network, p.base),
            ImprovementPercent(c.applevel, p.base) - 8.0);
}

TEST(EndToEnd, RegionalismReducesDeliveryCost) {
  // Section 3's table pair: regional subscriptions cost less to serve.
  Section3Params regional;
  regional.regionalism = 0.4;
  Section3Params flat;
  flat.regionalism = 0.0;
  const Scenario a = MakeSection3Scenario(PaperNet100(), 400, regional, 17);
  const Scenario b = MakeSection3Scenario(PaperNet100(), 400, flat, 17);
  DeliverySimulator sim_a(a.net.graph, a.workload);
  DeliverySimulator sim_b(b.net.graph, b.workload);
  Rng ra(18), rb(18);
  const auto ev_a = SampleEvents(sim_a, *a.pub, 200, ra);
  const auto ev_b = SampleEvents(sim_b, *b.pub, 200, rb);
  const BaselineCosts base_a = EvaluateBaselines(sim_a, ev_a);
  const BaselineCosts base_b = EvaluateBaselines(sim_b, ev_b);
  EXPECT_LT(base_a.unicast, base_b.unicast);
  EXPECT_LT(base_a.ideal, base_b.ideal);
}

TEST(EndToEnd, GridMatcherNeverMissesASubscriber) {
  // Safety property across the whole pipeline: every interested subscriber
  // receives the message, via group or unicast.
  Pipeline p(8);
  const auto cells = p.grid.top_cells(1200);
  Rng rng(9);
  const Assignment a = GridAlgorithmByName("kmeans").run(cells, 30, rng);
  const GridMatcher matcher(p.grid, a, 30);
  for (const EventSample& e : p.events) {
    const MatchDecision d = matcher.match(e.pub.point, e.interested);
    for (const SubscriberId s : e.interested) {
      const bool in_group =
          d.group_id >= 0 &&
          std::find(d.group_members.begin(), d.group_members.end(), s) !=
              d.group_members.end();
      const bool in_unicast = std::find(d.unicast_targets.begin(),
                                        d.unicast_targets.end(),
                                        s) != d.unicast_targets.end();
      EXPECT_TRUE(in_group || in_unicast);
    }
  }
}

}  // namespace
}  // namespace pubsub
