// Tests for the chaos driver (broker/chaos): schedule determinism and the
// headline durability claim — hundreds of scripted kill/recover cycles
// across every named fail-point site end bit-identical to an un-faulted
// reference run.
#include "broker/chaos.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "broker/types.h"
#include "io/serialize.h"
#include "sim/scenario.h"
#include "util/failpoint.h"

namespace pubsub {
namespace {

std::string Rendered(const std::vector<JournalRecord>& schedule,
                     std::size_t dims) {
  std::ostringstream os;
  for (const JournalRecord& rec : schedule) WriteJournalRecord(os, rec, dims);
  return os.str();
}

TEST(ChaosSchedule, DeterministicSequencedAndShaped) {
  const Scenario sc = MakeStockScenario(40, PublicationHotSpots::kOne, 91);
  const auto a = BuildChaosSchedule(sc.net, sc.workload, 60, 5, 7);
  const auto b = BuildChaosSchedule(sc.net, sc.workload, 60, 5, 7);
  const auto dims = sc.workload.space.dims();
  EXPECT_EQ(Rendered(a, dims), Rendered(b, dims));  // same seed, same bytes

  // 60 publishes plus one churn command every 5 events.
  ASSERT_EQ(a.size(), 60u + 60u / 5u);
  std::size_t publishes = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, i + 1);  // schedule[broker->seq()] is always next
    if (i > 0) EXPECT_GE(a[i].cmd.time_ms, a[i - 1].cmd.time_ms);
    if (a[i].cmd.type == BrokerCommandType::kPublish) ++publishes;
  }
  EXPECT_EQ(publishes, 60u);

  // A different seed is a different stream.
  const auto c = BuildChaosSchedule(sc.net, sc.workload, 60, 5, 8);
  EXPECT_NE(Rendered(a, dims), Rendered(c, dims));
}

TEST(ChaosSchedule, NoChurnMeansPurePublishes) {
  const Scenario sc = MakeStockScenario(30, PublicationHotSpots::kOne, 91);
  const auto a = BuildChaosSchedule(sc.net, sc.workload, 25, 0, 7);
  ASSERT_EQ(a.size(), 25u);
  for (const JournalRecord& rec : a)
    EXPECT_EQ(rec.cmd.type, BrokerCommandType::kPublish);
}

// The acceptance bar of the fault-injection layer: >= 200 kill/recover
// cycles, faults at every named site, and the survivor (plus its warm
// standby) bit-identical to a broker that never saw a fault.
TEST(Chaos, TwoHundredKillRecoverCyclesAreBitIdentical) {
  const Scenario sc = MakeStockScenario(50, PublicationHotSpots::kOne, 61);
  ChaosOptions opts;
  opts.num_events = 400;
  opts.churn_every = 5;
  opts.seed = 7;
  opts.chaos_seed = 1;
  opts.cycles = 200;
  opts.snapshot_every = 50;
  opts.broker.group.num_groups = 8;
  opts.broker.group.max_cells = 300;

  const ChaosReport r = RunChaos(sc.net, sc.workload, *sc.pub, opts);

  EXPECT_EQ(r.commands, 480u);
  EXPECT_GE(r.cycles, 200u);
  EXPECT_GT(r.recoveries, 0u);
  EXPECT_GE(r.torn_tails, 1u);        // torn-tail drop exercised
  EXPECT_GE(r.degraded_entries, 1u);  // degraded mode exercised
  EXPECT_GT(r.digest_checks, 0u);
  EXPECT_EQ(r.digest_mismatches, 0u);
  EXPECT_EQ(r.final_seq, 480u);
  EXPECT_TRUE(r.digests_match);
  EXPECT_TRUE(r.replica_matches);
  EXPECT_EQ(r.final_digest, r.reference_digest);
  EXPECT_EQ(r.replica_digest, r.reference_digest);

  // Every named kill site actually killed the process at least once under
  // this seed (the driver forces snapshots into snapshot.* fault windows).
  for (const char* site :
       {"journal.write", "journal.flush", "broker.publish.pre_journal",
        "broker.publish.post_journal", "snapshot.write", "snapshot.flush",
        "replica.apply", "recover.replay"}) {
    const auto it = r.kills_by_site.find(site);
    ASSERT_NE(it, r.kills_by_site.end()) << site << " never fired";
    EXPECT_GE(it->second, 1u) << site;
  }

  // The harness must disarm the global registry behind itself.
  EXPECT_FALSE(FailPoints::Instance().active());

  const std::string report = FormatChaosReport(r);
  EXPECT_NE(report.find("bit-identical"), std::string::npos);
  EXPECT_NE(report.find("torn tails"), std::string::npos);
}

// Zero cycles degenerates to a clean replay: the whole schedule applies
// with no kills, and the digest still matches the reference.
TEST(Chaos, ZeroCyclesIsACleanReplay) {
  const Scenario sc = MakeStockScenario(30, PublicationHotSpots::kOne, 61);
  ChaosOptions opts;
  opts.num_events = 40;
  opts.churn_every = 4;
  opts.cycles = 0;
  opts.snapshot_every = 10;
  opts.broker.group.num_groups = 6;
  opts.broker.group.max_cells = 200;

  const ChaosReport r = RunChaos(sc.net, sc.workload, *sc.pub, opts);
  EXPECT_EQ(r.cycles, 0u);
  EXPECT_EQ(r.torn_tails, 0u);
  EXPECT_TRUE(r.digests_match);
  EXPECT_TRUE(r.replica_matches);
}

// Storage chaos drill: the paged tier on a real filesystem, driven through
// the storage.* fail-point sites plus physical truncation, must keep the
// last good page file answering queries bit-identically to the in-memory
// reference (the atomic-replace protocol of docs/STORAGE.md).
TEST(Chaos, StorageDrillSurvivesAllFaultModes) {
  StorageChaosOptions opts;
  opts.dir = ::testing::TempDir();
  opts.num_rects = 300;
  opts.queries = 32;
  opts.cycles = 14;  // two full rotations of the 7-mode fault schedule
  opts.page_size = 1024;
  opts.buffer_pages = 8;

  const StorageChaosReport r = RunStorageChaos(opts);
  EXPECT_EQ(r.cycles, 14u);
  EXPECT_TRUE(r.ok()) << "parity mismatches: " << r.parity_mismatches;
  EXPECT_GT(r.parity_checks, 0u);
  // Each rotation exercises every mode at least once.
  EXPECT_GE(r.crashes, 2u);           // modes 0/1 (crash, torn) x2 rotations
  EXPECT_GE(r.short_writes, 2u);      // mode 2
  EXPECT_GE(r.flush_retries, 2u);     // mode 3
  EXPECT_GE(r.degraded_entries, 2u);  // mode 4
  EXPECT_GE(r.read_errors, 2u);       // mode 5
  EXPECT_GE(r.torn_tails, 2u);        // mode 6
  EXPECT_GE(r.rebuilds, 2u);

  // The drill must disarm the global registry behind itself.
  EXPECT_FALSE(FailPoints::Instance().active());

  const std::string report = FormatStorageChaosReport(r);
  EXPECT_NE(report.find("bit-identical"), std::string::npos);
}

}  // namespace
}  // namespace pubsub
