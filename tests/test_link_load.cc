#include "sim/link_load.h"

#include <gtest/gtest.h>

namespace pubsub {
namespace {

// Star: center 0, leaves 1..3, unit costs; edge ids 0,1,2 in order.
struct StarFixture {
  StarFixture() : graph(4) {
    for (int i = 1; i <= 3; ++i) graph.add_edge(0, i, 1.0);
    spt = Dijkstra(graph, 0);
  }
  Graph graph;
  ShortestPathTree spt;
};

TEST(LinkLoad, UnicastPaysPerTarget) {
  StarFixture f;
  LinkLoadTracker t(f.graph);
  const std::vector<NodeId> targets = {1, 1, 2};
  t.add_unicast(f.spt, targets, 100.0);
  EXPECT_EQ(t.load(0), 200.0);  // edge to node 1, twice
  EXPECT_EQ(t.load(1), 100.0);
  EXPECT_EQ(t.load(2), 0.0);
  EXPECT_EQ(t.total_bytes(), 300.0);
  EXPECT_EQ(t.max_link_load(), 200.0);
  EXPECT_EQ(t.links_used(), 2u);
}

TEST(LinkLoad, MulticastPaysPerTreeEdgeOnce) {
  StarFixture f;
  LinkLoadTracker t(f.graph);
  const std::vector<NodeId> members = {1, 1, 2, 3};
  t.add_multicast(f.spt, members, 100.0);
  EXPECT_EQ(t.load(0), 100.0);
  EXPECT_EQ(t.load(1), 100.0);
  EXPECT_EQ(t.load(2), 100.0);
  EXPECT_EQ(t.total_bytes(), 300.0);
  EXPECT_EQ(t.max_link_load(), 100.0);
}

TEST(LinkLoad, SharedPathCountedOncePerMulticast) {
  // Line 0-1-2: members {1,2} share edge 0-1.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const ShortestPathTree spt = Dijkstra(g, 0);
  LinkLoadTracker t(g);
  t.add_multicast(spt, std::vector<NodeId>{1, 2}, 10.0);
  EXPECT_EQ(t.load(0), 10.0);
  EXPECT_EQ(t.load(1), 10.0);
  // A second multicast accumulates.
  t.add_multicast(spt, std::vector<NodeId>{2}, 10.0);
  EXPECT_EQ(t.load(0), 20.0);
  EXPECT_EQ(t.load(1), 20.0);
}

TEST(LinkLoad, BroadcastLoadsEveryTreeEdge) {
  StarFixture f;
  LinkLoadTracker t(f.graph);
  t.add_broadcast(f.spt, 7.0);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(t.load(e), 7.0);
}

TEST(LinkLoad, ResetAndQuantiles) {
  StarFixture f;
  LinkLoadTracker t(f.graph);
  t.add_unicast(f.spt, std::vector<NodeId>{1, 2, 2, 3, 3, 3}, 1.0);
  // Loads: 1, 2, 3.
  EXPECT_EQ(t.load_quantile(0.0), 1.0);
  EXPECT_EQ(t.load_quantile(0.5), 2.0);
  EXPECT_EQ(t.load_quantile(1.0), 3.0);
  t.reset();
  EXPECT_EQ(t.total_bytes(), 0.0);
  EXPECT_EQ(t.links_used(), 0u);
  EXPECT_EQ(t.load_quantile(0.5), 0.0);
}

TEST(LinkLoad, RejectsUnreachableTargets) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const ShortestPathTree spt = Dijkstra(g, 0);
  LinkLoadTracker t(g);
  EXPECT_THROW(t.add_unicast(spt, std::vector<NodeId>{2}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(t.add_multicast(spt, std::vector<NodeId>{2}, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pubsub
