#include "workload/multirange.h"

#include <gtest/gtest.h>

#include <random>

namespace pubsub {
namespace {

TEST(NormalizeUnionTest, SortsMergesAndDropsEmpty) {
  const auto out = NormalizeUnion({Interval(5, 8), Interval(0, 2), Interval(2, 4),
                                   Interval(3, 3), Interval(1, 3)});
  // (0,2] ∪ (2,4] ∪ (1,3] merge into (0,4]; (5,8] stays; (3,3] dropped.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Interval(0, 4));
  EXPECT_EQ(out[1], Interval(5, 8));
}

TEST(NormalizeUnionTest, EmptyAndSingle) {
  EXPECT_TRUE(NormalizeUnion({}).empty());
  EXPECT_TRUE(NormalizeUnion({Interval(2, 2)}).empty());
  const auto one = NormalizeUnion({Interval(1, 5)});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], Interval(1, 5));
}

TEST(DecomposeTest, CartesianProductOfUnions) {
  MultiRangeSubscription sub;
  sub.node = 3;
  sub.ranges = {{Interval(0, 2), Interval(5, 7)},       // two name ranges
                {Interval(-1, 10)},                      // one price range
                {Interval(0, 1), Interval(3, 4), Interval(8, 9)}};
  const auto rects = DecomposeToRects(sub);
  EXPECT_EQ(rects.size(), 2u * 1u * 3u);
  // Rectangles are pairwise disjoint.
  for (std::size_t i = 0; i < rects.size(); ++i)
    for (std::size_t j = i + 1; j < rects.size(); ++j)
      EXPECT_FALSE(rects[i].intersects(rects[j])) << i << "," << j;
}

TEST(DecomposeTest, UnmatchablePredicateDecomposesToNothing) {
  MultiRangeSubscription sub;
  sub.ranges = {{Interval(0, 2)}, {}};
  EXPECT_TRUE(DecomposeToRects(sub).empty());
  MultiRangeSubscription degenerate;
  degenerate.ranges = {{Interval(1, 1)}};
  EXPECT_TRUE(DecomposeToRects(degenerate).empty());
}

TEST(DecomposeTest, MembershipEquivalenceProperty) {
  // A random point is in some decomposed rectangle iff every coordinate
  // lies in that dimension's union — the §1 semantic-preservation claim.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    MultiRangeSubscription sub;
    const int dims = 2 + static_cast<int>(rng() % 2);
    for (int d = 0; d < dims; ++d) {
      std::vector<Interval> pieces;
      const int n = 1 + static_cast<int>(rng() % 3);
      for (int i = 0; i < n; ++i) {
        double a = static_cast<double>(rng() % 20);
        double b = static_cast<double>(rng() % 20);
        if (a > b) std::swap(a, b);
        pieces.emplace_back(a, b + 1);
      }
      sub.ranges.push_back(std::move(pieces));
    }
    const auto rects = DecomposeToRects(sub);

    for (int q = 0; q < 40; ++q) {
      Point p;
      for (int d = 0; d < dims; ++d)
        p.push_back(static_cast<double>(rng() % 22) - 0.5);

      bool in_union = true;
      for (int d = 0; d < dims; ++d) {
        bool dim_ok = false;
        for (const Interval& iv : sub.ranges[static_cast<std::size_t>(d)])
          dim_ok = dim_ok || iv.contains(p[static_cast<std::size_t>(d)]);
        in_union = in_union && dim_ok;
      }
      int containing = 0;
      for (const Rect& r : rects)
        if (r.contains(p)) ++containing;
      EXPECT_EQ(containing > 0, in_union);
      EXPECT_LE(containing, 1);  // disjointness
    }
  }
}

TEST(AppendDecomposedTest, AddsSubscribersUnderOneNode) {
  Workload wl;
  wl.space = EventSpace({{"a", 21}, {"b", 21}});
  MultiRangeSubscription sub;
  sub.node = 9;
  sub.ranges = {{Interval(0, 3), Interval(6, 8)}, {Interval(-1, 20)}};
  EXPECT_EQ(AppendDecomposed(wl, sub), 2u);
  ASSERT_EQ(wl.subscribers.size(), 2u);
  for (const Subscriber& s : wl.subscribers) EXPECT_EQ(s.node, 9);

  MultiRangeSubscription wrong_dims;
  wrong_dims.node = 1;
  wrong_dims.ranges = {{Interval(0, 1)}};
  EXPECT_THROW(AppendDecomposed(wl, wrong_dims), std::invalid_argument);
}

}  // namespace
}  // namespace pubsub
