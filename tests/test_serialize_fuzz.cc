// Randomized round-trip and malformed-input tests for the io layer:
// arbitrary generated artifacts must survive write→read unchanged, and
// truncating or corrupting any prefix of a valid file must raise a clean
// parse error (never crash or mis-parse).
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "io/serialize.h"
#include "sim/scenario.h"

namespace pubsub {
namespace {

class WorkloadRoundTripFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadRoundTripFuzz, RandomWorkloadsSurvive) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  Workload wl;
  const int dims = 1 + static_cast<int>(rng() % 5);
  std::vector<DimensionSpec> specs;
  for (int d = 0; d < dims; ++d)
    specs.push_back(DimensionSpec{"dim" + std::to_string(d),
                                  2 + static_cast<int>(rng() % 30)});
  wl.space = EventSpace(std::move(specs));

  const int subs = static_cast<int>(rng() % 120);
  for (int i = 0; i < subs; ++i) {
    Subscriber s;
    s.node = static_cast<NodeId>(rng() % 50);
    std::vector<Interval> ivals;
    for (int d = 0; d < dims; ++d) {
      switch (rng() % 4) {
        case 0:
          ivals.push_back(Interval::All());
          break;
        case 1:
          ivals.push_back(Interval::AtMost(static_cast<double>(rng() % 100) / 7.0));
          break;
        case 2:
          ivals.push_back(Interval::GreaterThan(-static_cast<double>(rng() % 100) / 3.0));
          break;
        default: {
          const double lo = static_cast<double>(rng() % 1000) / 13.0 - 30.0;
          ivals.push_back(Interval(lo, lo + static_cast<double>(rng() % 50) / 9.0));
        }
      }
    }
    s.interest = Rect(std::move(ivals));
    wl.subscribers.push_back(std::move(s));
  }

  std::ostringstream os;
  WriteWorkload(os, wl);
  std::istringstream is(os.str());
  const Workload back = ReadWorkload(is);
  ASSERT_EQ(back.subscribers.size(), wl.subscribers.size());
  for (std::size_t i = 0; i < wl.subscribers.size(); ++i) {
    EXPECT_EQ(back.subscribers[i].node, wl.subscribers[i].node);
    EXPECT_EQ(back.subscribers[i].interest, wl.subscribers[i].interest);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadRoundTripFuzz, ::testing::Range(0, 10));

TEST(SerializeFuzz, TruncationAlwaysThrowsCleanly) {
  Rng rng(3);
  const TransitStubNetwork net = GenerateTransitStub(PaperNet100(), rng);
  std::ostringstream os;
  WriteTransitStub(os, net);
  const std::string full = os.str();

  // Truncate at a spread of offsets; every prefix must fail loudly.
  for (std::size_t frac = 1; frac < 20; ++frac) {
    const std::size_t cut = full.size() * frac / 20;
    std::istringstream is(full.substr(0, cut));
    EXPECT_THROW(ReadTransitStub(is), std::runtime_error) << "cut=" << cut;
  }
  // The untruncated file still parses.
  std::istringstream ok(full);
  EXPECT_NO_THROW(ReadTransitStub(ok));
}

TEST(SerializeFuzz, SingleCharacterCorruptionNeverCrashes) {
  Rng rng(4);
  const TransitStubNetwork net = GenerateTransitStub(PaperNet100(), rng);
  std::ostringstream os;
  WriteTransitStub(os, net);
  const std::string full = os.str();

  std::mt19937_64 mut(9);
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = full;
    const std::size_t pos = mut() % corrupted.size();
    corrupted[pos] = static_cast<char>('!' + mut() % 90);
    std::istringstream is(corrupted);
    // Either it still parses (the corruption hit a digit and produced
    // another valid number) or it throws a parse error — never UB/crash.
    try {
      const TransitStubNetwork back = ReadTransitStub(is);
      EXPECT_GE(back.graph.num_nodes(), 0);
    } catch (const std::exception&) {
      // expected for most corruptions
    }
  }
}

}  // namespace
}  // namespace pubsub
