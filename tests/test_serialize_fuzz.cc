// Randomized round-trip and malformed-input tests for the io layer:
// arbitrary generated artifacts must survive write→read unchanged, and
// truncating or corrupting any prefix of a valid file must raise a clean
// parse error (never crash or mis-parse).
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "broker/broker.h"
#include "broker/chaos.h"
#include "io/serialize.h"
#include "sim/scenario.h"

namespace pubsub {
namespace {

class WorkloadRoundTripFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadRoundTripFuzz, RandomWorkloadsSurvive) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  Workload wl;
  const int dims = 1 + static_cast<int>(rng() % 5);
  std::vector<DimensionSpec> specs;
  for (int d = 0; d < dims; ++d)
    specs.push_back(DimensionSpec{"dim" + std::to_string(d),
                                  2 + static_cast<int>(rng() % 30)});
  wl.space = EventSpace(std::move(specs));

  const int subs = static_cast<int>(rng() % 120);
  for (int i = 0; i < subs; ++i) {
    Subscriber s;
    s.node = static_cast<NodeId>(rng() % 50);
    std::vector<Interval> ivals;
    for (int d = 0; d < dims; ++d) {
      switch (rng() % 4) {
        case 0:
          ivals.push_back(Interval::All());
          break;
        case 1:
          ivals.push_back(Interval::AtMost(static_cast<double>(rng() % 100) / 7.0));
          break;
        case 2:
          ivals.push_back(Interval::GreaterThan(-static_cast<double>(rng() % 100) / 3.0));
          break;
        default: {
          const double lo = static_cast<double>(rng() % 1000) / 13.0 - 30.0;
          ivals.push_back(Interval(lo, lo + static_cast<double>(rng() % 50) / 9.0));
        }
      }
    }
    s.interest = Rect(std::move(ivals));
    wl.subscribers.push_back(std::move(s));
  }

  std::ostringstream os;
  WriteWorkload(os, wl);
  std::istringstream is(os.str());
  const Workload back = ReadWorkload(is);
  ASSERT_EQ(back.subscribers.size(), wl.subscribers.size());
  for (std::size_t i = 0; i < wl.subscribers.size(); ++i) {
    EXPECT_EQ(back.subscribers[i].node, wl.subscribers[i].node);
    EXPECT_EQ(back.subscribers[i].interest, wl.subscribers[i].interest);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadRoundTripFuzz, ::testing::Range(0, 10));

TEST(SerializeFuzz, TruncationAlwaysThrowsCleanly) {
  Rng rng(3);
  const TransitStubNetwork net = GenerateTransitStub(PaperNet100(), rng);
  std::ostringstream os;
  WriteTransitStub(os, net);
  const std::string full = os.str();

  // Truncate at a spread of offsets; every prefix must fail loudly.
  for (std::size_t frac = 1; frac < 20; ++frac) {
    const std::size_t cut = full.size() * frac / 20;
    std::istringstream is(full.substr(0, cut));
    EXPECT_THROW(ReadTransitStub(is), std::runtime_error) << "cut=" << cut;
  }
  // The untruncated file still parses.
  std::istringstream ok(full);
  EXPECT_NO_THROW(ReadTransitStub(ok));
}

TEST(SerializeFuzz, SingleCharacterCorruptionNeverCrashes) {
  Rng rng(4);
  const TransitStubNetwork net = GenerateTransitStub(PaperNet100(), rng);
  std::ostringstream os;
  WriteTransitStub(os, net);
  const std::string full = os.str();

  std::mt19937_64 mut(9);
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = full;
    const std::size_t pos = mut() % corrupted.size();
    corrupted[pos] = static_cast<char>('!' + mut() % 90);
    std::istringstream is(corrupted);
    // Either it still parses (the corruption hit a digit and produced
    // another valid number) or it throws a parse error — never UB/crash.
    try {
      const TransitStubNetwork back = ReadTransitStub(is);
      EXPECT_GE(back.graph.num_nodes(), 0);
    } catch (const std::exception&) {
      // expected for most corruptions
    }
  }
}

// --- broker formats -------------------------------------------------------

BrokerSnapshot RandomSnapshot(std::mt19937_64& rng) {
  BrokerSnapshot snap;
  snap.seq = rng() % 1000;
  const int dims = 1 + static_cast<int>(rng() % 4);
  std::vector<DimensionSpec> specs;
  for (int d = 0; d < dims; ++d)
    specs.push_back(DimensionSpec{"dim" + std::to_string(d),
                                  2 + static_cast<int>(rng() % 20)});
  snap.workload.space = EventSpace(std::move(specs));
  const int subs = static_cast<int>(rng() % 40);
  for (int i = 0; i < subs; ++i) {
    Subscriber s;
    s.node = static_cast<NodeId>(rng() % 30);
    std::vector<Interval> ivals;
    for (int d = 0; d < dims; ++d) {
      if (rng() % 5 == 0) {
        ivals.push_back(Interval());  // tombstoned dimension
      } else {
        const double lo = static_cast<double>(rng() % 100) / 7.0;
        ivals.push_back(Interval(lo, lo + static_cast<double>(rng() % 30) / 11.0));
      }
    }
    s.interest = Rect(std::move(ivals));
    snap.workload.subscribers.push_back(std::move(s));
  }
  snap.num_groups = 1 + static_cast<int>(rng() % 8);
  const int cells = static_cast<int>(rng() % 50);
  for (int c = 0; c < cells; ++c)
    snap.assignment.push_back(static_cast<int>(rng() % (static_cast<std::uint64_t>(snap.num_groups) + 1)) - 1);
  snap.cells_fed = snap.assignment.size();
  snap.churn_since_full_build = rng() % 100;
  const int queue = static_cast<int>(rng() % 20);
  for (int q = 0; q < queue; ++q)
    snap.queue_state.push_back(static_cast<double>(rng() % 100000) / 13.0);
  snap.stats.commands_applied = rng() % 10000;
  snap.stats.publishes = rng() % 10000;
  snap.stats.journal_bytes = rng() % 100000;
  return snap;
}

class BrokerSnapshotFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BrokerSnapshotFuzz, RandomSnapshotsSurvive) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 77);
  const BrokerSnapshot snap = RandomSnapshot(rng);
  std::ostringstream os;
  WriteBrokerSnapshot(os, snap);
  std::istringstream is(os.str());
  const BrokerSnapshot back = ReadBrokerSnapshot(is);
  EXPECT_EQ(back.seq, snap.seq);
  EXPECT_EQ(back.assignment, snap.assignment);
  EXPECT_EQ(back.queue_state, snap.queue_state);
  EXPECT_EQ(back.stats, snap.stats);
  ASSERT_EQ(back.workload.subscribers.size(), snap.workload.subscribers.size());
  for (std::size_t i = 0; i < snap.workload.subscribers.size(); ++i)
    EXPECT_EQ(back.workload.subscribers[i].interest,
              snap.workload.subscribers[i].interest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrokerSnapshotFuzz, ::testing::Range(0, 10));

std::string SampleBrokerFiles(std::uint64_t seed, bool journal) {
  std::mt19937_64 rng(seed);
  std::ostringstream os;
  if (journal) {
    WriteJournalHeader(os, 2);
    for (std::uint64_t seq = 1; seq <= 12; ++seq) {
      JournalRecord rec;
      rec.seq = seq;
      rec.cmd.time_ms = static_cast<double>(seq) * 1.5;
      switch (rng() % 4) {
        case 0:
          rec.cmd.type = BrokerCommandType::kSubscribe;
          rec.cmd.node = static_cast<NodeId>(rng() % 20);
          rec.cmd.interest = Rect({Interval(1.0, 4.5), Interval::AtMost(3.0)});
          break;
        case 1:
          rec.cmd.type = BrokerCommandType::kUnsubscribe;
          rec.cmd.subscriber = static_cast<SubscriberId>(rng() % 20);
          break;
        case 2:
          rec.cmd.type = BrokerCommandType::kUpdate;
          rec.cmd.subscriber = static_cast<SubscriberId>(rng() % 20);
          rec.cmd.interest = Rect({Interval::All(), Interval(0.25, 2.0)});
          break;
        default:
          rec.cmd.type = BrokerCommandType::kPublish;
          rec.cmd.node = static_cast<NodeId>(rng() % 20);
          rec.cmd.point = {static_cast<double>(rng() % 10),
                           static_cast<double>(rng() % 10)};
      }
      WriteJournalRecord(os, rec, 2);
    }
  } else {
    WriteBrokerSnapshot(os, RandomSnapshot(rng));
  }
  return os.str();
}

TEST(SerializeFuzz, BrokerSnapshotTruncationAlwaysThrowsCleanly) {
  const std::string full = SampleBrokerFiles(5, /*journal=*/false);
  for (std::size_t frac = 1; frac < 20; ++frac) {
    const std::size_t cut = full.size() * frac / 20;
    std::istringstream is(full.substr(0, cut));
    EXPECT_THROW(ReadBrokerSnapshot(is), std::runtime_error) << "cut=" << cut;
  }
  std::istringstream ok(full);
  EXPECT_NO_THROW(ReadBrokerSnapshot(ok));
}

TEST(SerializeFuzz, BrokerFilesSingleCharacterCorruptionNeverCrashes) {
  for (const bool journal : {false, true}) {
    const std::string full = SampleBrokerFiles(6, journal);
    std::mt19937_64 mut(11);
    for (int trial = 0; trial < 60; ++trial) {
      std::string corrupted = full;
      const std::size_t pos = mut() % corrupted.size();
      corrupted[pos] = static_cast<char>('!' + mut() % 90);
      std::istringstream is(corrupted);
      try {
        if (journal) {
          const JournalFile back = ReadJournal(is);
          EXPECT_LE(back.records.size(), 12u);
        } else {
          const BrokerSnapshot back = ReadBrokerSnapshot(is);
          EXPECT_GE(back.num_groups, 0);
        }
      } catch (const std::exception&) {
        // expected for most corruptions — the invariant is "no crash"
      }
    }
  }
}

// Torn tail at EVERY byte offset of the final record: wherever the crash
// lands mid-append, the lenient reader must keep exactly the complete
// records, and Broker::Recover on them must reproduce — bit for bit — the
// state of a broker that executed exactly those commands.
TEST(SerializeFuzz, TornTailAtEveryByteOffsetRecoversToLastCompleteRecord) {
  const Scenario sc = MakeStockScenario(30, PublicationHotSpots::kOne, 61);
  BrokerOptions opts;
  opts.group.num_groups = 6;
  opts.group.max_cells = 200;

  const std::vector<JournalRecord> schedule =
      BuildChaosSchedule(sc.net, sc.workload, 6, 3, 7);
  ASSERT_GE(schedule.size(), 4u);

  // Reference digests and the seq-0 snapshot all recoveries start from.
  Broker ref(sc.workload, *sc.pub, sc.net.graph, opts);
  const BrokerSnapshot base = ref.snapshot();
  std::vector<std::uint64_t> ref_digest;
  ref_digest.push_back(ref.state_digest());
  for (const JournalRecord& rec : schedule) {
    ref.apply(rec);
    ref_digest.push_back(ref.state_digest());
  }

  std::ostringstream os;
  const std::size_t dims = sc.workload.space.dims();
  WriteJournalHeader(os, dims);
  for (const JournalRecord& rec : schedule) WriteJournalRecord(os, rec, dims);
  const std::string full = os.str();
  // First byte of the final record's line.
  const std::size_t last_start = full.rfind('\n', full.size() - 2) + 1;
  const std::uint64_t complete = schedule.back().seq - 1;

  for (std::size_t cut = last_start; cut < full.size(); ++cut) {
    std::istringstream is(full.substr(0, cut));
    const JournalReadResult jr = ReadJournalLenient(is);
    // cut == last_start leaves a cleanly terminated journal; any deeper cut
    // leaves an unterminated fragment the reader must classify as torn.
    EXPECT_EQ(jr.torn_tail, cut > last_start) << "cut=" << cut;
    ASSERT_EQ(jr.journal.records.size(), complete) << "cut=" << cut;

    const auto broker = Broker::Recover(base, jr.journal.records, *sc.pub,
                                        sc.net.graph, opts);
    EXPECT_EQ(broker->seq(), complete) << "cut=" << cut;
    EXPECT_EQ(broker->state_digest(), ref_digest[complete]) << "cut=" << cut;
  }

  // The untouched journal still replays to the very end.
  std::istringstream whole(full);
  const JournalReadResult jr = ReadJournalLenient(whole);
  EXPECT_FALSE(jr.torn_tail);
  const auto broker =
      Broker::Recover(base, jr.journal.records, *sc.pub, sc.net.graph, opts);
  EXPECT_EQ(broker->state_digest(), ref_digest.back());
}

}  // namespace
}  // namespace pubsub
