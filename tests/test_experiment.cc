#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace pubsub {
namespace {

TEST(Improvement, NormalizationEndpoints) {
  BaselineCosts base;
  base.unicast = 1000;
  base.ideal = 200;
  EXPECT_DOUBLE_EQ(ImprovementPercent(base.unicast, base), 0.0);
  EXPECT_DOUBLE_EQ(ImprovementPercent(base.ideal, base), 100.0);
  EXPECT_DOUBLE_EQ(ImprovementPercent(600, base), 50.0);
  // Worse than unicast → negative (as in the paper's plots).
  EXPECT_LT(ImprovementPercent(1200, base), 0.0);
  // Degenerate denominator.
  BaselineCosts flat;
  flat.unicast = flat.ideal = 10;
  EXPECT_EQ(ImprovementPercent(5, flat), 0.0);
}

TEST(Scenario, DeterministicUnderSeed) {
  const Scenario a = MakeStockScenario(200, PublicationHotSpots::kOne, 42);
  const Scenario b = MakeStockScenario(200, PublicationHotSpots::kOne, 42);
  ASSERT_EQ(a.workload.num_subscribers(), b.workload.num_subscribers());
  for (std::size_t i = 0; i < a.workload.subscribers.size(); ++i) {
    EXPECT_EQ(a.workload.subscribers[i].node, b.workload.subscribers[i].node);
    EXPECT_EQ(a.workload.subscribers[i].interest, b.workload.subscribers[i].interest);
  }
  EXPECT_EQ(a.net.graph.num_edges(), b.net.graph.num_edges());
}

TEST(Scenario, DifferentSeedsDiffer) {
  const Scenario a = MakeStockScenario(200, PublicationHotSpots::kOne, 1);
  const Scenario b = MakeStockScenario(200, PublicationHotSpots::kOne, 2);
  bool differs = false;
  for (std::size_t i = 0; i < a.workload.subscribers.size() && !differs; ++i)
    differs = !(a.workload.subscribers[i].interest == b.workload.subscribers[i].interest);
  EXPECT_TRUE(differs);
}

TEST(Scenario, Section3BuildsConsistentSpace) {
  Section3Params params;
  const Scenario s = MakeSection3Scenario(PaperNet100(), 100, params, 5);
  EXPECT_EQ(s.workload.space.dim(0).domain_size, s.net.num_stubs);
  EXPECT_EQ(s.pub->space().dims(), 4u);
  EXPECT_EQ(s.workload.num_subscribers(), 100u);
}

TEST(SampleEventsTest, InterestedSetsMatchSimulator) {
  const Scenario s = MakeStockScenario(300, PublicationHotSpots::kOne, 9);
  DeliverySimulator sim(s.net.graph, s.workload);
  Rng rng(10);
  const auto events = SampleEvents(sim, *s.pub, 50, rng);
  ASSERT_EQ(events.size(), 50u);
  for (const EventSample& e : events) {
    EXPECT_EQ(e.interested, sim.interested(e.pub.point));
    EXPECT_TRUE(s.pub->space().domain_rect().contains(e.pub.point));
  }
}

TEST(EvaluateBaselinesTest, OrderingInvariants) {
  const Scenario s = MakeStockScenario(500, PublicationHotSpots::kOne, 11);
  DeliverySimulator sim(s.net.graph, s.workload);
  Rng rng(12);
  const auto events = SampleEvents(sim, *s.pub, 100, rng);
  const BaselineCosts base = EvaluateBaselines(sim, events, /*with_applevel_ideal=*/true);
  EXPECT_EQ(base.events, 100u);
  // Ideal multicast never beats the interested-node lower bound of zero and
  // never exceeds unicast or broadcast.
  EXPECT_GE(base.ideal, 0.0);
  EXPECT_LE(base.ideal, base.unicast + 1e-9);
  EXPECT_LE(base.ideal, base.broadcast + 1e-9);
  // App-level ideal relays over unicast paths — at least the network ideal.
  EXPECT_GE(base.ideal_app, base.ideal - 1e-9);
}

TEST(EvaluateMatcherTest, CountsEventsAndMatchesManualSum) {
  const Scenario s = MakeStockScenario(300, PublicationHotSpots::kOne, 13);
  DeliverySimulator sim(s.net.graph, s.workload);
  Rng rng(14);
  const auto events = SampleEvents(sim, *s.pub, 60, rng);

  // A matcher that always unicasts must cost exactly the unicast baseline.
  const MatchFn unicast_all = [](const Point&, std::span<const SubscriberId> interested) {
    MatchDecision d;
    d.unicast_targets = interested;  // aliases the caller's stable storage
    return d;
  };
  const ClusteredCosts c = EvaluateMatcher(sim, events, unicast_all);
  const BaselineCosts base = EvaluateBaselines(sim, events);
  EXPECT_NEAR(c.network, base.unicast, 1e-9);
  EXPECT_NEAR(c.applevel, base.unicast, 1e-9);
  EXPECT_EQ(c.unicast_events, 60u);
  EXPECT_EQ(c.multicast_events, 0u);
  EXPECT_EQ(c.wasted_deliveries, 0u);
  EXPECT_DOUBLE_EQ(ImprovementPercent(c.network, base), 0.0);
}

}  // namespace
}  // namespace pubsub
