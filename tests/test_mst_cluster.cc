#include "core/mst_cluster.h"

#include <gtest/gtest.h>

#include "cluster_test_util.h"

namespace pubsub {
namespace {

using testutil::CellSet;
using testutil::MatchesTruth;
using testutil::RandomCells;
using testutil::SeparableCells;
using testutil::ValidPartition;

// Same partition up to label renaming.
bool SamePartition(const Assignment& a, const Assignment& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = i + 1; j < a.size(); ++j)
      if ((a[i] == a[j]) != (b[i] == b[j])) return false;
  return true;
}

class MstEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MstEquivalence, PrimCutEqualsKruskalStopAtK) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const CellSet set = RandomCells(35, 14, rng);
  for (const std::size_t k : {1u, 2u, 5u, 12u, 35u}) {
    const Assignment prim = MstCluster(set.cells, k);
    const Assignment kruskal = MstClusterKruskal(set.cells, k);
    EXPECT_TRUE(ValidPartition(prim, k));
    EXPECT_TRUE(ValidPartition(kruskal, k));
    EXPECT_TRUE(SamePartition(prim, kruskal)) << "seed " << GetParam() << " K=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstEquivalence, ::testing::Range(0, 8));

TEST(MstClusterTest, RecoversSeparableBlocks) {
  Rng rng(20);
  const CellSet set = SeparableCells(5, 8, 10, rng);
  const Assignment a = MstCluster(set.cells, 5);
  EXPECT_TRUE(ValidPartition(a, 5));
  EXPECT_TRUE(MatchesTruth(set.truth, a));
}

TEST(MstClusterTest, SingleGroupMergesEverything) {
  Rng rng(21);
  const CellSet set = RandomCells(20, 10, rng);
  const Assignment a = MstCluster(set.cells, 1);
  for (const int g : a) EXPECT_EQ(g, 0);
}

TEST(MstClusterTest, KEqualsCellCountIsDiscrete) {
  Rng rng(22);
  const CellSet set = RandomCells(10, 8, rng);
  const Assignment a = MstCluster(set.cells, 10);
  EXPECT_TRUE(ValidPartition(a, 10));
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i], a[j]);
}

TEST(MstClusterTest, MonotoneHierarchy) {
  // Cutting one more MST edge refines the partition (Kruskal nesting).
  Rng rng(23);
  const CellSet set = RandomCells(30, 12, rng);
  Assignment prev = MstCluster(set.cells, 2);
  for (const std::size_t k : {3u, 5u, 9u, 15u}) {
    const Assignment cur = MstCluster(set.cells, k);
    for (std::size_t i = 0; i < cur.size(); ++i)
      for (std::size_t j = 0; j < cur.size(); ++j)
        if (cur[i] == cur[j]) EXPECT_EQ(prev[i], prev[j]);
    prev = cur;
  }
}

TEST(MstClusterTest, TrivialSizes) {
  EXPECT_TRUE(MstCluster({}, 3).empty());
  BitVector v(4);
  v.set(0);
  const std::vector<ClusterCell> one = {{&v, 1.0}};
  EXPECT_EQ(MstCluster(one, 2), Assignment{0});
  EXPECT_THROW(MstCluster(one, 0), std::invalid_argument);
  EXPECT_THROW(MstClusterKruskal(one, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pubsub
