#include "core/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster_test_util.h"

namespace pubsub {
namespace {

using testutil::CellSet;
using testutil::MatchesTruth;
using testutil::RandomCells;
using testutil::SeparableCells;
using testutil::ValidPartition;

class KMeansVariantTest : public ::testing::TestWithParam<KMeansVariant> {
 protected:
  KMeansOptions Opt() const {
    KMeansOptions o;
    o.variant = GetParam();
    return o;
  }
};

TEST_P(KMeansVariantTest, RecoversSeparableBlocks) {
  Rng rng(1);
  CellSet set = SeparableCells(3, 12, 15, rng);
  // Popularity ordering is a precondition of the seeding step.
  std::vector<std::size_t> order(set.cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return set.cells[a].popularity() > set.cells[b].popularity();
  });
  std::vector<ClusterCell> cells;
  std::vector<int> truth;
  for (const std::size_t i : order) {
    cells.push_back(set.cells[i]);
    truth.push_back(set.truth[i]);
  }

  const KMeansResult r = KMeansCluster(cells, 3, Opt());
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(ValidPartition(r.assignment, 3));
  EXPECT_TRUE(MatchesTruth(truth, r.assignment));
  // Separated blocks have zero expected waste... within a block every pair
  // of cells shares the group but may differ, so waste is merely finite;
  // cross-block grouping would add strictly positive inter-block waste.
  const double waste = TotalExpectedWaste(cells, r.assignment, 3);
  EXPECT_GE(waste, 0.0);
}

TEST_P(KMeansVariantTest, ProducesValidPartitionOnRandomData) {
  Rng rng(2);
  const CellSet set = RandomCells(120, 40, rng);
  for (const std::size_t k : {1u, 2u, 7u, 40u}) {
    const KMeansResult r = KMeansCluster(set.cells, k, Opt());
    EXPECT_TRUE(ValidPartition(r.assignment, k)) << "K=" << k;
  }
}

TEST_P(KMeansVariantTest, KClampedToCellCount) {
  Rng rng(3);
  const CellSet set = RandomCells(5, 10, rng);
  const KMeansResult r = KMeansCluster(set.cells, 50, Opt());
  EXPECT_TRUE(ValidPartition(r.assignment, 5));
}

TEST_P(KMeansVariantTest, DeterministicAcrossRuns) {
  Rng rng(4);
  const CellSet set = RandomCells(80, 30, rng);
  const KMeansResult a = KMeansCluster(set.cells, 8, Opt());
  const KMeansResult b = KMeansCluster(set.cells, 8, Opt());
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST_P(KMeansVariantTest, ImprovesOnInitialPartition) {
  Rng rng(5);
  const CellSet set = RandomCells(150, 50, rng);
  KMeansOptions no_iter = Opt();
  no_iter.max_iterations = 0;
  KMeansOptions full = Opt();
  const double before =
      TotalExpectedWaste(set.cells, KMeansCluster(set.cells, 10, no_iter).assignment, 10);
  const double after =
      TotalExpectedWaste(set.cells, KMeansCluster(set.cells, 10, full).assignment, 10);
  EXPECT_LE(after, before + 1e-9);
}

TEST_P(KMeansVariantTest, IterationCapRespected) {
  Rng rng(6);
  const CellSet set = RandomCells(100, 30, rng);
  KMeansOptions opt = Opt();
  opt.max_iterations = 2;
  const KMeansResult r = KMeansCluster(set.cells, 5, opt);
  EXPECT_LE(r.iterations, 2u);
  EXPECT_TRUE(ValidPartition(r.assignment, 5));
}

TEST_P(KMeansVariantTest, EmptyAndSingletonInputs) {
  const KMeansResult empty = KMeansCluster({}, 3, Opt());
  EXPECT_TRUE(empty.assignment.empty());

  BitVector v(4);
  v.set(0);
  const std::vector<ClusterCell> one = {{&v, 0.5}};
  const KMeansResult r = KMeansCluster(one, 3, Opt());
  EXPECT_EQ(r.assignment, Assignment{0});
}

TEST_P(KMeansVariantTest, RejectsZeroK) {
  BitVector v(4);
  v.set(1);
  const std::vector<ClusterCell> one = {{&v, 0.5}};
  EXPECT_THROW(KMeansCluster(one, 0, Opt()), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Variants, KMeansVariantTest,
                         ::testing::Values(KMeansVariant::kMacQueen,
                                           KMeansVariant::kForgy),
                         [](const auto& info) {
                           return info.param == KMeansVariant::kMacQueen
                                      ? "MacQueen"
                                      : "Forgy";
                         });

TEST(KMeans, WarmStartConvergesFasterOnPerturbedInput) {
  Rng rng(8);
  const CellSet set = RandomCells(200, 60, rng);
  const KMeansResult cold = KMeansCluster(set.cells, 12, {});
  ASSERT_TRUE(cold.converged);

  // Re-cluster the same cells warm-started from the converged assignment:
  // it must converge in a few re-balancing passes (the returned assignment
  // may be a best-of-run intermediate, not a pass fixed point) and must
  // not lose quality.
  KMeansOptions warm;
  warm.warm_start = &cold.assignment;
  const KMeansResult again = KMeansCluster(set.cells, 12, warm);
  EXPECT_TRUE(again.converged);
  EXPECT_LE(again.iterations, cold.iterations);
  EXPECT_LE(TotalExpectedWaste(set.cells, again.assignment, 12),
            TotalExpectedWaste(set.cells, cold.assignment, 12) + 1e-9);
}

TEST(KMeans, WarmStartPlacesUnlabeledCellsByDistance) {
  Rng rng(9);
  const CellSet set = SeparableCells(3, 8, 6, rng);
  // Label only the three seeds; everything else is -1.
  Assignment seed(set.cells.size(), -1);
  seed[0] = 0;
  // Find one cell of each block to pin (cells are in block order).
  seed[0] = 0;
  seed[6] = 1;
  seed[12] = 2;
  KMeansOptions warm;
  warm.warm_start = &seed;
  const KMeansResult r = KMeansCluster(set.cells, 3, warm);
  EXPECT_TRUE(ValidPartition(r.assignment, 3));
  EXPECT_TRUE(MatchesTruth(set.truth, r.assignment));
}

TEST(KMeans, WarmStartRejectsSizeMismatch) {
  Rng rng(10);
  const CellSet set = RandomCells(10, 8, rng);
  Assignment bad(5, 0);
  KMeansOptions warm;
  warm.warm_start = &bad;
  EXPECT_THROW(KMeansCluster(set.cells, 3, warm), std::invalid_argument);
}

TEST(KMeans, GroupsNeverEmptied) {
  // With K = number of cells every cell is its own seed and none may move.
  Rng rng(7);
  const CellSet set = RandomCells(12, 10, rng);
  const KMeansResult r = KMeansCluster(set.cells, 12, {});
  Assignment expect(12);
  for (int i = 0; i < 12; ++i) expect[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(r.assignment, expect);
}

}  // namespace
}  // namespace pubsub
