#include "core/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "cluster_test_util.h"
#include "util/thread_pool.h"

namespace pubsub {
namespace {

using testutil::CellSet;
using testutil::MatchesTruth;
using testutil::RandomCells;
using testutil::SeparableCells;
using testutil::ValidPartition;

class KMeansVariantTest : public ::testing::TestWithParam<KMeansVariant> {
 protected:
  KMeansOptions Opt() const {
    KMeansOptions o;
    o.variant = GetParam();
    return o;
  }
};

TEST_P(KMeansVariantTest, RecoversSeparableBlocks) {
  Rng rng(1);
  CellSet set = SeparableCells(3, 12, 15, rng);
  // Popularity ordering is a precondition of the seeding step.
  std::vector<std::size_t> order(set.cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return set.cells[a].popularity() > set.cells[b].popularity();
  });
  std::vector<ClusterCell> cells;
  std::vector<int> truth;
  for (const std::size_t i : order) {
    cells.push_back(set.cells[i]);
    truth.push_back(set.truth[i]);
  }

  const KMeansResult r = KMeansCluster(cells, 3, Opt());
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(ValidPartition(r.assignment, 3));
  EXPECT_TRUE(MatchesTruth(truth, r.assignment));
  // Separated blocks have zero expected waste... within a block every pair
  // of cells shares the group but may differ, so waste is merely finite;
  // cross-block grouping would add strictly positive inter-block waste.
  const double waste = TotalExpectedWaste(cells, r.assignment, 3);
  EXPECT_GE(waste, 0.0);
}

TEST_P(KMeansVariantTest, ProducesValidPartitionOnRandomData) {
  Rng rng(2);
  const CellSet set = RandomCells(120, 40, rng);
  for (const std::size_t k : {1u, 2u, 7u, 40u}) {
    const KMeansResult r = KMeansCluster(set.cells, k, Opt());
    EXPECT_TRUE(ValidPartition(r.assignment, k)) << "K=" << k;
  }
}

TEST_P(KMeansVariantTest, KClampedToCellCount) {
  Rng rng(3);
  const CellSet set = RandomCells(5, 10, rng);
  const KMeansResult r = KMeansCluster(set.cells, 50, Opt());
  EXPECT_TRUE(ValidPartition(r.assignment, 5));
}

TEST_P(KMeansVariantTest, DeterministicAcrossRuns) {
  Rng rng(4);
  const CellSet set = RandomCells(80, 30, rng);
  const KMeansResult a = KMeansCluster(set.cells, 8, Opt());
  const KMeansResult b = KMeansCluster(set.cells, 8, Opt());
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST_P(KMeansVariantTest, ImprovesOnInitialPartition) {
  Rng rng(5);
  const CellSet set = RandomCells(150, 50, rng);
  KMeansOptions no_iter = Opt();
  no_iter.max_iterations = 0;
  KMeansOptions full = Opt();
  const double before =
      TotalExpectedWaste(set.cells, KMeansCluster(set.cells, 10, no_iter).assignment, 10);
  const double after =
      TotalExpectedWaste(set.cells, KMeansCluster(set.cells, 10, full).assignment, 10);
  EXPECT_LE(after, before + 1e-9);
}

TEST_P(KMeansVariantTest, IterationCapRespected) {
  Rng rng(6);
  const CellSet set = RandomCells(100, 30, rng);
  KMeansOptions opt = Opt();
  opt.max_iterations = 2;
  const KMeansResult r = KMeansCluster(set.cells, 5, opt);
  EXPECT_LE(r.iterations, 2u);
  EXPECT_TRUE(ValidPartition(r.assignment, 5));
}

TEST_P(KMeansVariantTest, EmptyAndSingletonInputs) {
  const KMeansResult empty = KMeansCluster({}, 3, Opt());
  EXPECT_TRUE(empty.assignment.empty());

  BitVector v(4);
  v.set(0);
  const std::vector<ClusterCell> one = {{&v, 0.5}};
  const KMeansResult r = KMeansCluster(one, 3, Opt());
  EXPECT_EQ(r.assignment, Assignment{0});
}

TEST_P(KMeansVariantTest, RejectsZeroK) {
  BitVector v(4);
  v.set(1);
  const std::vector<ClusterCell> one = {{&v, 0.5}};
  EXPECT_THROW(KMeansCluster(one, 0, Opt()), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Variants, KMeansVariantTest,
                         ::testing::Values(KMeansVariant::kMacQueen,
                                           KMeansVariant::kForgy),
                         [](const auto& info) {
                           return info.param == KMeansVariant::kMacQueen
                                      ? "MacQueen"
                                      : "Forgy";
                         });

TEST(KMeans, WarmStartConvergesFasterOnPerturbedInput) {
  Rng rng(8);
  const CellSet set = RandomCells(200, 60, rng);
  const KMeansResult cold = KMeansCluster(set.cells, 12, {});
  ASSERT_TRUE(cold.converged);

  // Re-cluster the same cells warm-started from the converged assignment:
  // it must converge in a few re-balancing passes (the returned assignment
  // may be a best-of-run intermediate, not a pass fixed point) and must
  // not lose quality.
  KMeansOptions warm;
  warm.warm_start = &cold.assignment;
  const KMeansResult again = KMeansCluster(set.cells, 12, warm);
  EXPECT_TRUE(again.converged);
  EXPECT_LE(again.iterations, cold.iterations);
  EXPECT_LE(TotalExpectedWaste(set.cells, again.assignment, 12),
            TotalExpectedWaste(set.cells, cold.assignment, 12) + 1e-9);
}

TEST(KMeans, WarmStartPlacesUnlabeledCellsByDistance) {
  Rng rng(9);
  const CellSet set = SeparableCells(3, 8, 6, rng);
  // Label only the three seeds; everything else is -1.
  Assignment seed(set.cells.size(), -1);
  seed[0] = 0;
  // Find one cell of each block to pin (cells are in block order).
  seed[0] = 0;
  seed[6] = 1;
  seed[12] = 2;
  KMeansOptions warm;
  warm.warm_start = &seed;
  const KMeansResult r = KMeansCluster(set.cells, 3, warm);
  EXPECT_TRUE(ValidPartition(r.assignment, 3));
  EXPECT_TRUE(MatchesTruth(set.truth, r.assignment));
}

TEST(KMeans, WarmStartRejectsSizeMismatch) {
  Rng rng(10);
  const CellSet set = RandomCells(10, 8, rng);
  Assignment bad(5, 0);
  KMeansOptions warm;
  warm.warm_start = &bad;
  EXPECT_THROW(KMeansCluster(set.cells, 3, warm), std::invalid_argument);
}

// Index-chain adjacency: cell i neighbors i-1 and i+1.  Synthetic stand-in
// for Grid::cluster_neighbors — the k-means closure machinery only sees a
// per-cell index list either way.
std::vector<std::vector<int>> ChainNeighbors(std::size_t n) {
  std::vector<std::vector<int>> nb(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) nb[i].push_back(static_cast<int>(i - 1));
    if (i + 1 < n) nb[i].push_back(static_cast<int>(i + 1));
  }
  return nb;
}

class KMeansClosureTest : public ::testing::TestWithParam<KMeansVariant> {
 protected:
  KMeansOptions Opt() const {
    KMeansOptions o;
    o.variant = GetParam();
    return o;
  }
};

// Oracle mode runs the exact scan on every decision and uses its verdict,
// so the output must be bit-identical to the closure-off path — on fuzzed
// inputs across sizes and K.  Mismatch counting rides along for free.
TEST_P(KMeansClosureTest, OracleBitIdenticalToExactPath) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    Rng rng(seed);
    const std::size_t count = 40 + seed * 30;
    const CellSet set = RandomCells(count, 25 + seed * 5, rng);
    const auto neighbors = ChainNeighbors(set.cells.size());
    for (const std::size_t k : {3u, 9u, 17u}) {
      const KMeansResult exact = KMeansCluster(set.cells, k, Opt());
      KMeansOptions oracle = Opt();
      oracle.closure = true;
      oracle.neighbors = &neighbors;
      oracle.closure_oracle = true;
      const KMeansResult r = KMeansCluster(set.cells, k, oracle);
      ASSERT_EQ(r.assignment, exact.assignment)
          << "seed=" << seed << " K=" << k;
      EXPECT_EQ(r.iterations, exact.iterations);
      EXPECT_EQ(r.converged, exact.converged);
      EXPECT_GT(r.closure_hits, 0u);
    }
  }
}

// Without the oracle the closure is allowed to land on a different (local)
// fixpoint, but every applied move passes an improvement check, so the
// final waste can never exceed the initial partition's.
TEST_P(KMeansClosureTest, ClosureNeverWorseThanInitialPartition) {
  Rng rng(24);
  const CellSet set = RandomCells(300, 40, rng);
  const auto neighbors = ChainNeighbors(set.cells.size());
  for (const std::size_t k : {5u, 16u}) {
    KMeansOptions opt = Opt();
    opt.closure = true;
    opt.neighbors = &neighbors;
    KMeansOptions no_iter = opt;  // same closure-seeded initial partition
    no_iter.max_iterations = 0;
    const double before =
        TotalExpectedWaste(set.cells, KMeansCluster(set.cells, k, no_iter).assignment,
                           static_cast<int>(k));
    const KMeansResult r = KMeansCluster(set.cells, k, opt);
    EXPECT_TRUE(ValidPartition(r.assignment, k));
    EXPECT_GT(r.closure_hits, 0u);
    EXPECT_LE(TotalExpectedWaste(set.cells, r.assignment, static_cast<int>(k)),
              before + 1e-9);
  }
}

// A sequence of budgeted resumable calls (1 pass each, warm-started from
// the previous result) must be bit-identical to one resumable run of the
// same total pass count — the per-pass canonical group rebuild makes every
// pass a pure function of the assignment, so where the budget cuts is
// invisible.  MacQueen reaches its fixpoint and stops; resumable Forgy may
// still be oscillating when the cap trips (patience is deliberately off in
// resumable mode), so the pin is on pass-count-aligned state, with matching
// convergence verdicts.
TEST_P(KMeansClosureTest, BudgetedResumeReachesSameFixpointAsOneRun) {
  Rng rng(25);
  const CellSet set = RandomCells(220, 35, rng);
  const auto neighbors = ChainNeighbors(set.cells.size());
  for (const bool with_closure : {false, true}) {
    KMeansOptions step = Opt();
    step.resumable = true;
    step.closure = with_closure;
    step.neighbors = with_closure ? &neighbors : nullptr;
    KMeansOptions full = step;  // same knobs, no budget
    step.budget.max_passes = 1;

    KMeansResult r = KMeansCluster(set.cells, 10, step);
    EXPECT_EQ(r.iterations, 1u);
    std::size_t total_passes = r.iterations;
    std::size_t rounds = 1;
    while (!r.converged && total_passes < 60) {
      ASSERT_TRUE(r.budget_exhausted);
      const Assignment warm = r.assignment;
      step.warm_start = &warm;
      r = KMeansCluster(set.cells, 10, step);
      total_passes += r.iterations;
      ++rounds;
    }
    EXPECT_GT(rounds, 1u) << "budget never split the run";
    if (GetParam() == KMeansVariant::kMacQueen)
      EXPECT_TRUE(r.converged) << "sequential passes must reach a fixpoint";

    full.max_iterations = total_passes;
    const KMeansResult one = KMeansCluster(set.cells, 10, full);
    EXPECT_EQ(one.assignment, r.assignment) << "closure=" << with_closure;
    EXPECT_EQ(one.iterations, total_passes) << "closure=" << with_closure;
    EXPECT_EQ(one.converged, r.converged) << "closure=" << with_closure;
  }
}

// Same budget-cut invisibility when the budget is expressed in cell visits
// instead of passes (soft cap, checked at pass boundaries).
TEST_P(KMeansClosureTest, CellVisitBudgetResumes) {
  Rng rng(26);
  const CellSet set = RandomCells(150, 30, rng);
  KMeansOptions step = Opt();
  step.resumable = true;
  KMeansOptions full = step;
  step.budget.max_cell_visits = set.cells.size();  // ~one pass worth

  KMeansResult r = KMeansCluster(set.cells, 8, step);
  std::size_t total_passes = r.iterations;
  std::size_t rounds = 1;
  while (!r.converged && total_passes < 60) {
    ASSERT_TRUE(r.budget_exhausted);
    const Assignment warm = r.assignment;
    step.warm_start = &warm;
    r = KMeansCluster(set.cells, 8, step);
    total_passes += r.iterations;
    ++rounds;
  }
  EXPECT_GT(rounds, 1u) << "budget never split the run";

  full.max_iterations = total_passes;
  const KMeansResult one = KMeansCluster(set.cells, 8, full);
  EXPECT_EQ(one.assignment, r.assignment);
  EXPECT_EQ(one.iterations, total_passes);
  EXPECT_EQ(one.converged, r.converged);
}

INSTANTIATE_TEST_SUITE_P(Variants, KMeansClosureTest,
                         ::testing::Values(KMeansVariant::kMacQueen,
                                           KMeansVariant::kForgy),
                         [](const auto& info) {
                           return info.param == KMeansVariant::kMacQueen
                                      ? "MacQueen"
                                      : "Forgy";
                         });

// The Forgy closure pass is pool-parallel; proposals are pure over the
// frozen pass-start state, so assignment AND counters must be bit-identical
// at any thread count.  400 cells clears the min_parallel threshold.
TEST(KMeansClosure, ForgyThreadCountInvariant) {
  Rng rng(27);
  const CellSet set = RandomCells(400, 50, rng);
  const auto neighbors = ChainNeighbors(set.cells.size());
  KMeansOptions opt;
  opt.variant = KMeansVariant::kForgy;
  opt.closure = true;
  opt.neighbors = &neighbors;

  ThreadPool::global().set_num_threads(1);
  const KMeansResult serial = KMeansCluster(set.cells, 16, opt);
  KMeansResult parallel;
  for (const int threads : {2, 4, 7}) {
    ThreadPool::global().set_num_threads(threads);
    parallel = KMeansCluster(set.cells, 16, opt);
    EXPECT_EQ(parallel.assignment, serial.assignment) << threads;
    EXPECT_EQ(parallel.iterations, serial.iterations) << threads;
    EXPECT_EQ(parallel.closure_hits, serial.closure_hits) << threads;
    EXPECT_EQ(parallel.closure_fallbacks, serial.closure_fallbacks) << threads;
  }
  ThreadPool::global().set_num_threads(1);
}

// Reference implementation of the pre-optimization MacQueen path: remove
// the cell, scan every group on the mutated state, re-add to the winner —
// even when the cell stays put — plus the patience/best-of stopping rule
// that surrounded the pass loop.  The shipped loop evaluates "stay" via
// distance_to_excluding and only mutates on an actual move; this pin
// proves the two are bit-identical, not merely close.
Assignment LegacyMacQueen(const std::vector<ClusterCell>& cells, std::size_t K,
                          std::size_t max_iterations = 100) {
  K = std::min(K, cells.size());
  const std::size_t ns = cells[0].members->size();
  Assignment assignment(cells.size(), -1);
  std::vector<GroupState> groups(K, GroupState(ns));
  const auto closest = [&](const ClusterCell& cell) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t g = 0; g < K; ++g) {
      const double d = groups[g].distance_to(cell);
      if (d < best_d) {
        best_d = d;
        best = g;
      }
    }
    return best;
  };
  for (std::size_t g = 0; g < K; ++g) {
    groups[g].add(cells[g]);
    assignment[g] = static_cast<int>(g);
  }
  for (std::size_t i = K; i < cells.size(); ++i) {
    const std::size_t g = closest(cells[i]);
    groups[g].add(cells[i]);
    assignment[i] = static_cast<int>(g);
  }
  double best_waste = TotalExpectedWaste(cells, assignment, static_cast<int>(K));
  Assignment best_assignment = assignment;
  std::size_t stale_passes = 0;
  constexpr std::size_t kPatience = 3;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    bool moved = false;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto cur = static_cast<std::size_t>(assignment[i]);
      if (groups[cur].size() == 1) continue;
      groups[cur].remove(cells[i]);
      const std::size_t next = closest(cells[i]);
      groups[next].add(cells[i]);
      if (next != cur) {
        assignment[i] = static_cast<int>(next);
        moved = true;
      }
    }
    if (!moved) break;
    const double waste =
        TotalExpectedWaste(cells, assignment, static_cast<int>(K));
    if (waste < best_waste) {
      best_waste = waste;
      best_assignment = assignment;
      stale_passes = 0;
    } else if (++stale_passes >= kPatience) {
      break;
    }
  }
  if (TotalExpectedWaste(cells, assignment, static_cast<int>(K)) > best_waste)
    assignment = std::move(best_assignment);
  return assignment;
}

TEST(KMeans, MacQueenBitIdenticalToLegacyDance) {
  for (const std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    Rng rng(seed);
    const CellSet set = RandomCells(60 + seed * 25, 20 + seed * 6, rng);
    for (const std::size_t k : {2u, 7u, 13u}) {
      const KMeansResult r = KMeansCluster(set.cells, k, {});
      EXPECT_EQ(r.assignment, LegacyMacQueen(set.cells, k))
          << "seed=" << seed << " K=" << k;
    }
  }
}

TEST(KMeans, GroupsNeverEmptied) {
  // With K = number of cells every cell is its own seed and none may move.
  Rng rng(7);
  const CellSet set = RandomCells(12, 10, rng);
  const KMeansResult r = KMeansCluster(set.cells, 12, {});
  Assignment expect(12);
  for (int i = 0; i < 12; ++i) expect[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(r.assignment, expect);
}

}  // namespace
}  // namespace pubsub
