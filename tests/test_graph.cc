#include <gtest/gtest.h>

#include <random>

#include "net/graph.h"
#include "net/union_find.h"

namespace pubsub {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.num_nodes(), 3);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 3);
  const EdgeId e = g.add_edge(0, 3, 2.5);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(e).cost, 2.5);
  EXPECT_EQ(g.edge(e).other(0), 3);
  EXPECT_EQ(g.edge(e).other(3), 0);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), std::invalid_argument);   // self-loop
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);   // zero cost
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);  // negative
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(2, 3, 1);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(Graph(0).is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
}

TEST(Graph, TotalEdgeCost) {
  Graph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  EXPECT_EQ(g.total_edge_cost(), 4.0);
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.num_components(), 4u);
  EXPECT_EQ(uf.component_size(1), 2u);
  uf.unite(2, 3);
  uf.unite(1, 3);
  EXPECT_EQ(uf.num_components(), 2u);
  EXPECT_EQ(uf.component_size(0), 4u);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_FALSE(uf.same(0, 4));
}

TEST(UnionFind, TransitivityStressAgainstLabels) {
  const std::size_t n = 200;
  UnionFind uf(n);
  std::vector<int> label(n);
  for (std::size_t i = 0; i < n; ++i) label[i] = static_cast<int>(i);
  std::mt19937_64 rng(3);
  for (int step = 0; step < 300; ++step) {
    const std::size_t a = rng() % n, b = rng() % n;
    uf.unite(a, b);
    const int la = label[a], lb = label[b];
    if (la != lb)
      for (std::size_t i = 0; i < n; ++i)
        if (label[i] == lb) label[i] = la;
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(uf.same(i, j), label[i] == label[j]) << i << "," << j;
}

}  // namespace
}  // namespace pubsub
