// Cross-algorithm property sweep: every registered grid algorithm must
// produce a valid K-partition on arbitrary inputs, behave deterministically
// under a fixed seed, and beat a round-robin assignment on the
// expected-waste objective for structured inputs.
#include "core/algorithms.h"

#include <gtest/gtest.h>

#include "cluster_test_util.h"

namespace pubsub {
namespace {

using testutil::CellSet;
using testutil::RandomCells;
using testutil::SeparableCells;
using testutil::ValidPartition;

struct SweepParam {
  std::size_t cells;
  std::size_t subscribers;
  std::size_t K;
};

class AlgorithmSweep
    : public ::testing::TestWithParam<std::tuple<std::string, SweepParam>> {};

TEST_P(AlgorithmSweep, ProducesValidDeterministicPartitions) {
  const auto& [name, param] = GetParam();
  const GridAlgorithm algo = GridAlgorithmByName(name);

  Rng data_rng(1234);
  const CellSet set = RandomCells(param.cells, param.subscribers, data_rng);

  Rng r1(7), r2(7);
  const Assignment a = algo.run(set.cells, param.K, r1);
  const Assignment b = algo.run(set.cells, param.K, r2);
  EXPECT_TRUE(ValidPartition(a, std::min(param.K, param.cells)));
  EXPECT_EQ(a, b) << "non-deterministic under fixed seed";
}

TEST_P(AlgorithmSweep, BeatsRoundRobinOnStructuredInput) {
  const auto& [name, param] = GetParam();
  const GridAlgorithm algo = GridAlgorithmByName(name);

  Rng data_rng(4321);
  // Structured: as many blocks as groups requested (capped to keep the
  // construction sensible).
  const std::size_t blocks = std::min<std::size_t>(param.K, 6);
  const CellSet set = SeparableCells(blocks, 6, param.cells / blocks + 1, data_rng);

  Rng rng(9);
  const Assignment got = algo.run(set.cells, blocks, rng);
  Assignment round_robin(set.cells.size());
  for (std::size_t i = 0; i < round_robin.size(); ++i)
    round_robin[i] = static_cast<int>(i % blocks);

  const double waste = TotalExpectedWaste(set.cells, got, static_cast<int>(blocks));
  const double rr_waste =
      TotalExpectedWaste(set.cells, round_robin, static_cast<int>(blocks));
  EXPECT_LT(waste, rr_waste) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmSweep,
    ::testing::Combine(::testing::Values("kmeans", "forgy", "mst", "pairs",
                                         "approx-pairs"),
                       ::testing::Values(SweepParam{30, 12, 4},
                                         SweepParam{90, 40, 12},
                                         SweepParam{150, 64, 30})),
    [](const auto& info) {
      std::string n = std::get<0>(info.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n + "_c" + std::to_string(std::get<1>(info.param).cells) + "_k" +
             std::to_string(std::get<1>(info.param).K);
    });

TEST(AlgorithmRegistry, KnowsAllFiveAndRejectsUnknown) {
  EXPECT_EQ(StandardGridAlgorithms().size(), 5u);
  EXPECT_THROW(GridAlgorithmByName("quantum-annealing"), std::invalid_argument);
  for (const GridAlgorithm& a : StandardGridAlgorithms())
    EXPECT_EQ(GridAlgorithmByName(a.name).name, a.name);
}

}  // namespace
}  // namespace pubsub
