#include <gtest/gtest.h>

#include "net/transit_stub.h"

namespace pubsub {
namespace {

TEST(TransitStub, ShapeMatchesParameters) {
  Rng rng(1);
  TransitStubParams p;
  p.transit_blocks = 2;
  p.transit_nodes_per_block = 3;
  p.stubs_per_transit_node = 2;
  p.nodes_per_stub = 5;
  const TransitStubNetwork net = GenerateTransitStub(p, rng);

  const int transit = 2 * 3;
  const int stubs = transit * 2;
  EXPECT_EQ(static_cast<int>(net.transit_nodes.size()), transit);
  EXPECT_EQ(net.num_stubs, stubs);
  EXPECT_EQ(net.graph.num_nodes(), transit + stubs * 5);
  EXPECT_EQ(static_cast<int>(net.host_nodes().size()), stubs * 5);
  EXPECT_EQ(static_cast<int>(net.stub_members.size()), stubs);
  for (const auto& members : net.stub_members) EXPECT_EQ(members.size(), 5u);
}

TEST(TransitStub, IsConnected) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const TransitStubNetwork net = GenerateTransitStub(PaperNetSection5(), rng);
    EXPECT_TRUE(net.graph.is_connected()) << "seed " << seed;
  }
}

TEST(TransitStub, BookkeepingConsistent) {
  Rng rng(3);
  const TransitStubNetwork net = GenerateTransitStub(PaperNetSection5(), rng);
  // Transit nodes have stub -1; stub members carry their stub id.
  for (const NodeId t : net.transit_nodes) EXPECT_EQ(net.stub_of_node[t], -1);
  for (int s = 0; s < net.num_stubs; ++s) {
    for (const NodeId v : net.stub_members[s]) {
      EXPECT_EQ(net.stub_of_node[v], s);
      EXPECT_EQ(net.block_of_node[v], net.block_of_stub[s]);
    }
  }
  // §5.1 shape: 3 blocks × 5 transit × 2 stubs × 20 nodes = 600 hosts.
  EXPECT_EQ(net.host_nodes().size(), 600u);
  EXPECT_EQ(net.num_stubs, 30);
}

TEST(TransitStub, PaperShapesProduceExpectedHostCounts) {
  Rng rng(4);
  EXPECT_EQ(GenerateTransitStub(PaperNet100(), rng).host_nodes().size(), 96u);
  EXPECT_EQ(GenerateTransitStub(PaperNet300(), rng).host_nodes().size(), 300u);
  EXPECT_EQ(GenerateTransitStub(PaperNet600(), rng).host_nodes().size(), 600u);
}

TEST(TransitStub, EdgeCostsFollowHierarchy) {
  Rng rng(5);
  TransitStubParams p = PaperNetSection5();
  const TransitStubNetwork net = GenerateTransitStub(p, rng);
  for (const Edge& e : net.graph.edges()) {
    const bool u_transit = net.stub_of_node[e.u] == -1;
    const bool v_transit = net.stub_of_node[e.v] == -1;
    if (u_transit && v_transit) {
      const bool same_block = net.block_of_node[e.u] == net.block_of_node[e.v];
      EXPECT_EQ(e.cost, same_block ? p.cost_intra_transit : p.cost_inter_block);
    } else if (u_transit != v_transit) {
      EXPECT_EQ(e.cost, p.cost_stub_uplink);
    } else {
      EXPECT_EQ(net.stub_of_node[e.u], net.stub_of_node[e.v]);
      EXPECT_EQ(e.cost, p.cost_intra_stub);
    }
  }
}

TEST(TransitStub, DifferentSeedsGiveDifferentTopologies) {
  Rng r1(10), r2(11);
  const TransitStubNetwork a = GenerateTransitStub(PaperNetSection5(), r1);
  const TransitStubNetwork b = GenerateTransitStub(PaperNetSection5(), r2);
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  // Edge sets should differ (identical would mean the seed is ignored).
  bool differs = a.graph.num_edges() != b.graph.num_edges();
  if (!differs) {
    for (int e = 0; e < a.graph.num_edges(); ++e) {
      if (a.graph.edge(e).u != b.graph.edge(e).u ||
          a.graph.edge(e).v != b.graph.edge(e).v) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(TransitStub, SameSeedIsDeterministic) {
  Rng r1(10), r2(10);
  const TransitStubNetwork a = GenerateTransitStub(PaperNetSection5(), r1);
  const TransitStubNetwork b = GenerateTransitStub(PaperNetSection5(), r2);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (int e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge(e).u, b.graph.edge(e).u);
    EXPECT_EQ(a.graph.edge(e).v, b.graph.edge(e).v);
    EXPECT_EQ(a.graph.edge(e).cost, b.graph.edge(e).cost);
  }
}

TEST(TransitStub, LastMileVariantAttachesHosts) {
  Rng rng(6);
  TransitStubParams p;
  p.transit_blocks = 1;
  p.transit_nodes_per_block = 2;
  p.stubs_per_transit_node = 2;
  p.nodes_per_stub = 4;
  p.last_mile_cost = 7.0;
  const TransitStubNetwork net = GenerateTransitStub(p, rng);

  // Routers + hosts: each stub doubles its node count.
  EXPECT_EQ(net.graph.num_nodes(), 2 + 4 * 4 * 2);
  EXPECT_TRUE(net.graph.is_connected());
  for (const auto& members : net.stub_members) {
    EXPECT_EQ(members.size(), 4u);
    for (const NodeId host : members) {
      // Hosts are leaves behind a single last-mile link.
      ASSERT_EQ(net.graph.degree(host), 1u);
      EXPECT_EQ(net.graph.edge(net.graph.neighbors(host)[0].edge).cost, 7.0);
    }
  }
}

TEST(TransitStub, RejectsNonPositiveShape) {
  Rng rng(7);
  TransitStubParams p;
  p.nodes_per_stub = 0;
  EXPECT_THROW(GenerateTransitStub(p, rng), std::invalid_argument);
}

}  // namespace
}  // namespace pubsub
