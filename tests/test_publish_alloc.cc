// Zero-allocation regression test for the publish hot path (DESIGN.md §10).
//
// The binary replaces global operator new/delete with counting wrappers;
// after a warm-up pass that grows every scratch arena to its steady-state
// capacity, a full replay of the same event set through Broker::publish
// must perform ZERO heap allocations.  Runs RUN_SERIAL so another test
// process cannot skew the wall clock of the warm-up (the count itself is
// exact either way).
//
// Also pins the span-lifetime contract: a MatchDecision aliases the
// scratch it was matched against and survives matches against *other*
// scratches, but not a reuse of its own.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "broker/broker.h"
#include "core/matching.h"
#include "core/noloss.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "workload/publication_model.h"
#include "workload/stock_model.h"

namespace {
std::atomic<std::size_t> g_news{0};

void* CountedAlloc(std::size_t n) {
  ++g_news;
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::align_val_t al) {
  ++g_news;
  const std::size_t a = static_cast<std::size_t>(al);
  void* p = std::aligned_alloc(a, (n + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  return CountedAlignedAlloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return CountedAlignedAlloc(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pubsub {
namespace {

TEST(PublishAlloc, SteadyStatePublishIsAllocationFree) {
  Scenario scenario = MakeStockScenario(250, PublicationHotSpots::kOne, 61);
  DeliverySimulator sim(scenario.net.graph, scenario.workload);
  Rng rng(62);
  const std::vector<EventSample> events =
      SampleEvents(sim, *scenario.pub, 150, rng);

  BrokerOptions opts;
  opts.group.num_groups = 12;
  opts.group.max_cells = 800;
  opts.refresh.churn_fraction = 0.03;
  opts.refresh.waste_ratio = 0.0;  // publish-only stream: no refreshes
  ManualClock clock;
  Broker broker(scenario.workload, *scenario.pub, scenario.net.graph, opts,
                &clock);

  // Warm-up: two full passes grow every arena (stab hits, interested,
  // completion targets, node lists, latencies, metrics shards, runtime
  // queues) to its high-water capacity for this workload.
  for (int pass = 0; pass < 2; ++pass) {
    for (const EventSample& e : events) {
      clock.advance(1.0);
      broker.publish(e.pub.origin, e.pub.point);
    }
  }

  const std::size_t before = g_news.load();
  std::size_t interested_total = 0;
  for (const EventSample& e : events) {
    clock.advance(1.0);
    const PublishOutcome out = broker.publish(e.pub.origin, e.pub.point);
    interested_total += out.interested;
  }
  const std::size_t allocs = g_news.load() - before;
  EXPECT_EQ(allocs, 0u) << "steady-state publish touched the heap";
  EXPECT_GT(interested_total, 0u) << "events matched nobody; test is vacuous";
}

// 1-D workload whose NoLoss clustering yields a group with a residual
// unicast set (subscriber 0 and 1 overlap outside the (4,9] core).
Workload LineWorkload() {
  Workload wl;
  wl.space = EventSpace({{"x", 20}});
  auto add = [&wl](double lo, double hi) {
    Subscriber s;
    s.node = static_cast<NodeId>(wl.subscribers.size());
    s.interest = Rect({Interval(lo, hi)});
    wl.subscribers.push_back(std::move(s));
  };
  add(-1, 9);
  add(4, 14);
  add(4, 9);
  add(15, 19);
  return wl;
}

TEST(PublishAlloc, DecisionSpansFollowTheirScratch) {
  const Workload wl = LineWorkload();
  std::vector<Marginal1D> m;
  for (std::size_t d = 0; d < wl.space.dims(); ++d)
    m.push_back(Marginal1D::UniformInt(wl.space.dim(d).domain_size));
  const ProductPublicationModel pub(wl.space, std::move(m),
                                    std::vector<NodeId>{0});
  const NoLossResult r = NoLossCluster(wl, pub);
  ASSERT_FALSE(r.groups.empty());
  const NoLossMatcher matcher(r, 2);

  // Event in (4,9]: the matched group covers 0,1,2; the extra id 3 in the
  // caller's set becomes a residual unicast, which lands in the scratch the
  // match ran against.
  const Point p{5.0};
  const std::vector<SubscriberId> interested{0, 1, 2, 3};

  MatchScratch a, b;
  const MatchDecision da = matcher.match(p, interested, a);
  const MatchDecision db = matcher.match(p, interested, b);
  const std::vector<SubscriberId> da_uni(da.unicast_targets.begin(),
                                         da.unicast_targets.end());
  ASSERT_FALSE(da_uni.empty()) << "no residual unicasts; test is vacuous";

  // A match against a *different* scratch must not disturb da's spans.
  EXPECT_EQ(std::vector<SubscriberId>(db.unicast_targets.begin(),
                                      db.unicast_targets.end()),
            da_uni);
  EXPECT_EQ(std::vector<SubscriberId>(da.unicast_targets.begin(),
                                      da.unicast_targets.end()),
            da_uni);

  // Reusing scratch `a` on an event with a different completion set
  // repoints the storage under da — the documented invalidation.  db,
  // backed by untouched scratch `b`, still reads the original values.
  const std::vector<SubscriberId> other{0, 1};
  (void)matcher.match(Point{16.0}, other, a);
  EXPECT_EQ(std::vector<SubscriberId>(db.unicast_targets.begin(),
                                      db.unicast_targets.end()),
            da_uni);
}

}  // namespace
}  // namespace pubsub
