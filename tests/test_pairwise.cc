#include "core/pairwise.h"

#include <gtest/gtest.h>

#include <limits>

#include "cluster_test_util.h"

namespace pubsub {
namespace {

using testutil::CellSet;
using testutil::MatchesTruth;
using testutil::RandomCells;
using testutil::SeparableCells;
using testutil::ValidPartition;

// Naive reference: repeatedly scan all group pairs, merge the minimum.
Assignment NaivePairwise(const std::vector<ClusterCell>& cells, std::size_t K) {
  const std::size_t n = cells.size();
  std::vector<GroupState> groups;
  std::vector<int> owner(n);
  std::vector<char> alive(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    groups.emplace_back(cells[0].members->size());
    groups.back().add(cells[i]);
    owner[i] = static_cast<int>(i);
  }
  std::size_t num_alive = n;
  while (num_alive > K) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!alive[j]) continue;
        const double d = groups[i].distance_to(groups[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    groups[bi].merge_from(groups[bj]);
    alive[bj] = 0;
    --num_alive;
    for (int& o : owner)
      if (o == static_cast<int>(bj)) o = static_cast<int>(bi);
  }
  std::vector<int> compact(n, -1);
  int next = 0;
  Assignment out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto g = static_cast<std::size_t>(owner[i]);
    if (compact[g] == -1) compact[g] = next++;
    out[i] = compact[g];
  }
  return out;
}

TEST(Pairwise, MatchesNaiveReference) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    const CellSet set = RandomCells(40, 16, rng);
    // Distinct probabilities make the merge sequence essentially unique.
    const Assignment fast = PairwiseCluster(set.cells, 5);
    const Assignment naive = NaivePairwise(set.cells, 5);
    EXPECT_EQ(fast, naive) << "seed " << seed;
  }
}

TEST(Pairwise, RecoversSeparableBlocks) {
  Rng rng(10);
  const CellSet set = SeparableCells(4, 10, 12, rng);
  const Assignment a = PairwiseCluster(set.cells, 4);
  EXPECT_TRUE(ValidPartition(a, 4));
  EXPECT_TRUE(MatchesTruth(set.truth, a));
}

TEST(Pairwise, IdenticalCellsMergeFirst) {
  // Two identical cells have distance 0 and must share a group even for
  // large K relative to the distinct count.
  BitVector a(8), b(8);
  a.set(1);
  b.set(5);
  const std::vector<ClusterCell> cells = {{&a, 0.5}, {&b, 0.5}, {&a, 0.5}};
  const Assignment got = PairwiseCluster(cells, 2);
  EXPECT_TRUE(ValidPartition(got, 2));
  EXPECT_EQ(got[0], got[2]);
  EXPECT_NE(got[0], got[1]);
}

TEST(Pairwise, MonotoneHierarchy) {
  // Hierarchical property (§6): the K-group partition refines the
  // (K−1)-group partition — cells sharing a group at K still share at K−1.
  Rng rng(11);
  const CellSet set = RandomCells(30, 12, rng);
  Assignment prev = PairwiseCluster(set.cells, 10);
  for (std::size_t k = 9; k >= 2; --k) {
    const Assignment cur = PairwiseCluster(set.cells, k);
    EXPECT_TRUE(ValidPartition(cur, k));
    for (std::size_t i = 0; i < prev.size(); ++i)
      for (std::size_t j = 0; j < prev.size(); ++j)
        if (prev[i] == prev[j]) EXPECT_EQ(cur[i], cur[j]);
    prev = cur;
  }
}

TEST(Pairwise, TrivialSizes) {
  EXPECT_TRUE(PairwiseCluster({}, 3).empty());
  BitVector v(4);
  v.set(0);
  const std::vector<ClusterCell> one = {{&v, 1.0}};
  EXPECT_EQ(PairwiseCluster(one, 3), Assignment{0});
  EXPECT_THROW(PairwiseCluster(one, 0), std::invalid_argument);
}

TEST(ApproxPairwise, ValidPartitionAndDeterministicUnderSeed) {
  Rng rng(12);
  const CellSet set = RandomCells(100, 30, rng);
  Rng r1(5), r2(5), r3(6);
  const Assignment a = ApproximatePairwiseCluster(set.cells, 9, r1);
  const Assignment b = ApproximatePairwiseCluster(set.cells, 9, r2);
  EXPECT_TRUE(ValidPartition(a, 9));
  EXPECT_EQ(a, b);
  // A different sampling seed may (and generally does) give another
  // partition, but it must still be valid.
  const Assignment c = ApproximatePairwiseCluster(set.cells, 9, r3);
  EXPECT_TRUE(ValidPartition(c, 9));
}

TEST(ApproxPairwise, RecoversWellSeparatedBlocks) {
  // With large inter-block distances even the sampled search finds the
  // cheap merges: quality close to exact pairs.
  Rng rng(13);
  const CellSet set = SeparableCells(3, 10, 10, rng);
  Rng arng(14);
  const Assignment a = ApproximatePairwiseCluster(set.cells, 3, arng);
  EXPECT_TRUE(ValidPartition(a, 3));
  // Not necessarily exact, but cross-block waste should remain small
  // compared with a random partition.
  const double waste = TotalExpectedWaste(set.cells, a, 3);
  Assignment round_robin(set.cells.size());
  for (std::size_t i = 0; i < round_robin.size(); ++i)
    round_robin[i] = static_cast<int>(i % 3);
  const double random_waste = TotalExpectedWaste(set.cells, round_robin, 3);
  EXPECT_LT(waste, random_waste * 0.5);
}

TEST(ApproxPairwise, WasteWithinFactorOfExact) {
  Rng rng(15);
  const CellSet set = RandomCells(60, 20, rng);
  const double exact = TotalExpectedWaste(set.cells, PairwiseCluster(set.cells, 6), 6);
  Rng arng(16);
  const double approx = TotalExpectedWaste(
      set.cells, ApproximatePairwiseCluster(set.cells, 6, arng), 6);
  // The paper: "works faster, but may obtain a poorer solution" — allow a
  // generous factor while catching pathological regressions.
  EXPECT_LT(approx, exact * 3 + 1e-9);
}

}  // namespace
}  // namespace pubsub
