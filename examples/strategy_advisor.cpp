// Distribution-method advisor (the paper's §3 question, as a tool).
//
// Given a network shape, a subscription count and a regionalism degree, it
// measures unicast, broadcast, ideal multicast and clustered multicast
// (Forgy, K groups) on a synthetic §3 workload, and reports which
// distribution method a deployment of that shape should use — reproducing
// the paper's observation that the answer flips with network size and
// subscription density.
//
// Run:  ./strategy_advisor [--nodes=100|300|600] [--subs=1000]
//                          [--regionalism=0.4] [--groups=60]
//                          [--events=300] [--seed=3]
#include <cstdio>
#include <string>

#include "core/algorithms.h"
#include "core/kmeans.h"
#include "core/grid.h"
#include "core/matching.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace {

using namespace pubsub;

TransitStubParams ShapeFor(const std::string& nodes) {
  if (nodes == "100") return PaperNet100();
  if (nodes == "300") return PaperNet300();
  if (nodes == "600") return PaperNet600();
  throw std::invalid_argument("--nodes must be 100, 300 or 600");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const std::string nodes = flags.get("nodes", "100");
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const double regionalism = flags.get_double("regionalism", 0.4);
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 100));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  Section3Params params;
  params.regionalism = regionalism;
  const Scenario s = MakeSection3Scenario(ShapeFor(nodes), subs, params, seed);
  DeliverySimulator sim(s.net.graph, s.workload);
  Rng rng(seed + 1);
  const auto events = SampleEvents(sim, *s.pub, num_events, rng);
  const BaselineCosts base = EvaluateBaselines(sim, events);

  Grid grid(s.workload, *s.pub);
  const Assignment assignment =
      [&] {
        KMeansOptions opt;
        opt.variant = KMeansVariant::kForgy;
        return KMeansCluster(grid.top_cells(static_cast<std::size_t>(
                   flags.get_int("cells", 100000))), K, opt).assignment;
      }();
  const GridMatcher matcher(grid, assignment, static_cast<int>(K));
  const double clustered =
      EvaluateMatcher(sim, events, MatcherFn(matcher)).network;

  std::printf("deployment: %s-node transit-stub network, %d subscriptions, "
              "regionalism %.1f\n\n", nodes.c_str(), subs, regionalism);
  std::printf("  unicast                 %10.0f\n", base.unicast);
  std::printf("  broadcast               %10.0f\n", base.broadcast);
  std::printf("  clustered multicast K=%-3zu %8.0f  (%.1f%% of the way to ideal)\n",
              K, clustered, ImprovementPercent(clustered, base));
  std::printf("  ideal multicast         %10.0f  (lower bound)\n\n", base.ideal);

  const double best = std::min({base.unicast, base.broadcast, clustered});
  const char* verdict = best == clustered  ? "clustered multicast"
                        : best == base.broadcast ? "broadcast"
                                                  : "unicast";
  std::printf("recommendation: %s", verdict);
  if (best == base.broadcast && base.broadcast < 1.2 * base.ideal)
    std::printf(" (broadcast is within 20%% of ideal — the Gryphon regime:\n"
                "  dense subscriptions make multicast group management "
                "not worth it)");
  if (best == clustered)
    std::printf("\n  (sparse interest over a large network — the regime where "
                "the paper's\n  subscription clustering pays off)");
  std::printf("\n");
  return 0;
}
