// Dynamic subscriptions (paper §4.2 and §6, discussion item 5).
//
// "K-means type algorithms … can be stopped after any iteration … This
//  also provides an easy way to accommodate changes in cell membership,
//  simply running a number of re-balancing iterations, when new
//  subscribers arrive or subscription rectangles are changed."
//
// This example drives the library's churn API (core/group_manager.h):
// every round replaces a fraction of subscribers with fresh ones, calls
// GroupManager::refresh() — grid rebuild + warm-started re-balancing — and
// compares the result against a cold re-clustering of the same state, in
// both quality and clustering time.
//
// Run:  ./dynamic_reclustering [--subs=800] [--groups=60] [--events=200]
//                              [--churn=0.2] [--rounds=5] [--seed=11]
#include <cstdio>

#include "core/group_manager.h"
#include "core/kmeans.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"
#include "obs/clock.h"

int main(int argc, char** argv) {
  using namespace pubsub;
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const auto subs = static_cast<int>(flags.get_int("subs", 800));
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 60));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 200));
  const double churn = flags.get_double("churn", 0.2);
  const auto rounds = static_cast<int>(flags.get_int("rounds", 5));

  Scenario s = MakeStockScenario(subs, PublicationHotSpots::kOne, seed);
  GroupManagerOptions opt;
  opt.num_groups = K;
  opt.max_cells = 4000;
  GroupManager mgr(s.workload, *s.pub, opt);
  Rng churn_rng(seed + 100);

  std::printf("dynamic re-clustering: %d subscribers, %.0f%% churn per round, "
              "K=%zu\n\n", subs, churn * 100, K);

  TextTable table({"round", "churned", "mode", "warm iters", "warm_s",
                   "warm improv%", "cold_s", "cold improv%"});
  for (int round = 1; round <= rounds; ++round) {
    // Churn: replace a fraction of subscribers with freshly generated ones.
    Rng gen_rng = churn_rng.split(static_cast<std::uint64_t>(round));
    const Workload fresh = GenerateStockSubscriptions(s.net, subs, {}, gen_rng);
    for (SubscriberId id = 0; id < subs; ++id)
      if (churn_rng.bernoulli(churn))
        mgr.update_subscriber(id, fresh.subscribers[static_cast<std::size_t>(id)].interest);

    // Warm path: the library's refresh.
    StopwatchClock warm_watch;
    const GroupManager::RefreshStats stats = mgr.refresh();
    const double warm_secs = warm_watch.elapsed_seconds();

    // Cold comparison: re-cluster the same cells from scratch.
    StopwatchClock cold_watch;
    const KMeansResult cold =
        KMeansCluster(mgr.grid().top_cells(opt.max_cells), K, {});
    const double cold_secs = cold_watch.elapsed_seconds();
    const GridMatcher cold_matcher(mgr.grid(), cold.assignment,
                                   static_cast<int>(K));

    // Evaluate both on a common event stream over the churned workload.
    DeliverySimulator sim(s.net.graph, mgr.workload());
    Rng event_rng(seed + 200 + static_cast<std::uint64_t>(round));
    const auto events = SampleEvents(sim, *s.pub, num_events, event_rng);
    const BaselineCosts base = EvaluateBaselines(sim, events);
    const double warm_impr = ImprovementPercent(
        EvaluateMatcher(sim, events, MatcherFn(mgr.matcher())).network, base);
    const double cold_impr = ImprovementPercent(
        EvaluateMatcher(sim, events, MatcherFn(cold_matcher)).network, base);

    table.row()
        .cell(static_cast<long long>(round))
        .cell(stats.churned)
        .cell(stats.full_rebuild ? "full rebuild" : "warm")
        .cell(stats.iterations)
        .cell(warm_secs, 2)
        .cell(warm_impr, 1)
        .cell(cold_secs, 2)
        .cell(cold_impr, 1);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("warm refresh inherits the previous groups and repairs them in "
              "a few passes;\ncold re-clustering starts from scratch every "
              "round (same grid, same K).\n");
  return 0;
}
