// Quickstart: build a pub-sub deployment end to end.
//
//   1. Generate a transit-stub network and a stock-market workload (§5.1).
//   2. Build the grid, cluster subscriptions into K multicast groups with
//      Forgy K-means (the paper's recommended algorithm).
//   3. Publish events, match each one, and compare delivery costs against
//      the unicast / broadcast / ideal-multicast baselines.
//
// Run:  ./quickstart [--subs=1000] [--groups=60] [--events=300] [--seed=7]
//                    [--cells=6000] [--algo=forgy|kmeans|mst|pairs|approx-pairs]
//                    [--threshold=0]
#include <cstdio>

#include "core/algorithms.h"
#include "core/grid.h"
#include "core/matching.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace pubsub;
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const int subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto groups = static_cast<std::size_t>(flags.get_int("groups", 60));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  // 1. Scenario: 600-node network, Zipf-placed stock subscriptions,
  //    single-hot-spot publications.
  Scenario s = MakeStockScenario(subs, PublicationHotSpots::kOne, seed);
  std::printf("network: %d nodes, %d edges, %d stubs\n", s.net.graph.num_nodes(),
              s.net.graph.num_edges(), s.net.num_stubs);
  std::printf("workload: %zu subscribers in space %s\n", s.workload.num_subscribers(),
              s.workload.space.to_string().c_str());

  // 2. Grid framework + Forgy clustering.
  Grid grid(s.workload, *s.pub);
  std::printf("grid: %lld lattice cells, %lld occupied, %zu hyper-cells\n",
              static_cast<long long>(grid.num_lattice_cells()),
              static_cast<long long>(grid.num_occupied_cells()),
              grid.hyper_cells().size());

  const std::vector<ClusterCell> cells =
      grid.top_cells(static_cast<std::size_t>(flags.get_int("cells", 6000)));
  Rng algo_rng(seed);
  const Assignment assignment =
      GridAlgorithmByName(flags.get("algo", "forgy")).run(cells, groups, algo_rng);
  GridMatcher matcher(grid, assignment, static_cast<int>(groups),
                      flags.get_double("threshold", 0.0));

  // 3. Publish and compare.
  DeliverySimulator sim(s.net.graph, s.workload);
  Rng event_rng(seed + 1);
  const std::vector<EventSample> events = SampleEvents(sim, *s.pub, num_events, event_rng);
  const BaselineCosts base = EvaluateBaselines(sim, events);
  const ClusteredCosts clustered = EvaluateMatcher(sim, events, MatcherFn(matcher));

  std::printf("\ncosts over %zu events:\n", events.size());
  std::printf("  unicast          %10.0f\n", base.unicast);
  std::printf("  broadcast        %10.0f\n", base.broadcast);
  std::printf("  ideal multicast  %10.0f\n", base.ideal);
  std::printf("  forgy, K=%-4zu    %10.0f (network)  %10.0f (app-level)\n", groups,
              clustered.network, clustered.applevel);
  std::printf("\nimprovement over unicast (100%% = ideal):\n");
  std::printf("  network multicast: %5.1f%%\n",
              ImprovementPercent(clustered.network, base));
  std::printf("  app-level multicast: %5.1f%%\n",
              ImprovementPercent(clustered.applevel, base));
  std::printf("  multicast events %zu, unicast fallback %zu, wasted deliveries %zu\n",
              clustered.multicast_events, clustered.unicast_events,
              clustered.wasted_deliveries);

  double sum_interested = 0;
  for (const EventSample& e : events) sum_interested += static_cast<double>(e.interested.size());
  double sum_group = 0;
  for (int g = 0; g < matcher.num_groups(); ++g)
    sum_group += static_cast<double>(matcher.group_members(g).size());
  std::printf("  avg interested/event %.1f, avg group size %.1f\n",
              sum_interested / static_cast<double>(events.size()),
              sum_group / static_cast<double>(matcher.num_groups()));
  return 0;
}
