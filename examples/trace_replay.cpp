// Trace replay (paper §6, discussion item 3): drive the clustered pub-sub
// system with a synthetic stock-trading-day trace instead of i.i.d.
// parametric events, and watch how clustering quality holds up under a
// temporally correlated feed (random-walk prices, Zipf-skewed tape).
//
// The clustering is still trained on the *parametric* publication model
// (the paper's static stage has no access to future traffic), so the
// replay also measures model mismatch: the parametric model thinks prices
// are i.i.d. around the hot spot, the trace walks them around.
//
// Run:  ./trace_replay [--subs=1000] [--groups=100] [--trace_events=2000]
//                      [--seed=21] [--window=500]
#include <cstdio>
#include <vector>

#include "core/algorithms.h"
#include "core/grid.h"
#include "core/matching.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"
#include "workload/trace.h"

namespace {

using namespace pubsub;

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 100));
  const auto total = static_cast<std::size_t>(flags.get_int("trace_events", 2000));
  const auto window = static_cast<std::size_t>(flags.get_int("window", 500));

  Scenario s = MakeStockScenario(subs, PublicationHotSpots::kOne, seed);
  DeliverySimulator sim(s.net.graph, s.workload);
  Grid grid(s.workload, *s.pub);
  Rng rng(seed + 1);
  const Assignment assignment =
      GridAlgorithmByName("forgy").run(grid.top_cells(6000), K, rng);
  const GridMatcher matcher(grid, assignment, static_cast<int>(K));

  // Generate the trading-day trace.
  Rng trace_rng(seed + 2);
  const std::vector<TraceEvent> trace =
      GenerateStockTrace(s.net, {}, {}, total, trace_rng);
  std::printf("trace: %zu events over %.1f simulated seconds\n\n", trace.size(),
              trace.back().timestamp);

  // Replay in windows, reporting improvement per window (drift check).
  TextTable table({"window", "t range (s)", "events", "improvement%",
                   "multicast%", "avg interested"});
  std::size_t start = 0;
  int window_id = 0;
  while (start < trace.size()) {
    const std::size_t end = std::min(start + window, trace.size());
    std::vector<EventSample> events;
    events.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      EventSample e;
      e.pub = trace[i].pub;
      e.interested = sim.interested(e.pub.point);
      events.push_back(std::move(e));
    }
    const BaselineCosts base = EvaluateBaselines(sim, events);
    const ClusteredCosts c = EvaluateMatcher(sim, events, MatcherFn(matcher));

    double sum_interested = 0;
    for (const EventSample& e : events)
      sum_interested += static_cast<double>(e.interested.size());

    char range[64];
    std::snprintf(range, sizeof(range), "%.0f-%.0f", trace[start].timestamp,
                  trace[end - 1].timestamp);
    table.row()
        .cell(static_cast<long long>(++window_id))
        .cell(range)
        .cell(events.size())
        .cell(ImprovementPercent(c.network, base), 1)
        .cell(100.0 * static_cast<double>(c.multicast_events) /
                  static_cast<double>(events.size()),
              1)
        .cell(sum_interested / static_cast<double>(events.size()), 1);
    start = end;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("clusters were trained once on the parametric model; as the "
              "trace's price walks\ndrift away from the trained hot spot, "
              "improvement decays window over window —\nthe drift that "
              "motivates periodic re-balancing "
              "(examples/dynamic_reclustering).\n");
  return 0;
}
