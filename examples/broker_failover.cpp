// Broker failover walkthrough: snapshot → crash → warm-standby promotion.
//
// A primary broker serves a stock workload while a warm standby follows
// its record stream (the clone pattern: state = snapshot + sequenced
// updates).  Mid-run we "kill" the primary, promote the standby, and show
// that the promoted broker continues from the exact same state — the state
// digests match, and a probe publication gets the identical match
// decision, target set and delivery timing.  We also recover a third
// broker from the on-disk artifacts (snapshot + journal text) to show the
// cold-restart path agrees too.
//
// Run:  ./broker_failover [--subs=400] [--groups=30] [--events=600]
//                         [--churn-every=8] [--seed=17]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "broker/broker.h"
#include "broker/replica.h"
#include "io/serialize.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "workload/stock_model.h"
#include "workload/trace.h"

namespace {

using namespace pubsub;

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  flags.require_known(
      {"subs", "groups", "events", "churn-every", "seed", "threads"});
  ConfigureThreadsFromFlags(flags);
  const auto subs = static_cast<int>(flags.get_int("subs", 400));
  const auto groups = static_cast<std::size_t>(flags.get_int("groups", 30));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 600));
  const auto churn_every = static_cast<std::size_t>(flags.get_int("churn-every", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));

  const Scenario s = MakeStockScenario(subs, PublicationHotSpots::kOne, seed);
  BrokerOptions opts;
  opts.group.num_groups = groups;
  opts.group.max_cells = 2000;
  opts.refresh.churn_fraction = 0.03;

  ManualClock primary_clock;
  Broker primary(s.workload, *s.pub, s.net.graph, opts, &primary_clock);
  std::ostringstream journal;  // stands in for the on-disk journal file
  primary.set_journal(&journal);

  // The standby bootstraps from the primary's seq-0 snapshot and then
  // follows the live record stream.
  ManualClock standby_clock;
  BrokerReplica standby(primary.snapshot(), *s.pub, s.net.graph, opts,
                        &standby_clock);
  primary.set_record_listener(
      [&standby](const JournalRecord& rec) { standby.apply(rec); });
  std::printf("primary + warm standby up: %zu subscribers, %zu groups\n",
              primary.workload().num_subscribers(), groups);

  // Serve a synthetic trading-day trace with interleaved churn.
  Rng trace_rng(seed + 1);
  const std::vector<TraceEvent> trace =
      GenerateStockTrace(s.net, {}, {}, num_events, trace_rng);
  Rng churn_rng = trace_rng.split(1);
  std::vector<SubscriberId> live(primary.workload().num_subscribers());
  for (std::size_t i = 0; i < live.size(); ++i)
    live[i] = static_cast<SubscriberId>(i);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    primary_clock.advance_to(trace[i].timestamp * 1000.0);
    if (churn_every > 0 && (i + 1) % churn_every == 0 && !live.empty()) {
      Rng sub_rng = churn_rng.split(i);
      const Workload one = GenerateStockSubscriptions(s.net, 1, {}, sub_rng);
      const auto pick = static_cast<std::size_t>(churn_rng.uniform_int(
          0, static_cast<std::int64_t>(live.size()) - 1));
      switch (i % 3) {
        case 0:
          live.push_back(primary.subscribe(one.subscribers[0].node,
                                           one.subscribers[0].interest));
          break;
        case 1:
          primary.update(live[pick], one.subscribers[0].interest);
          break;
        default:
          primary.unsubscribe(live[pick]);
          live[pick] = live.back();
          live.pop_back();
      }
    }
    primary.publish(trace[i].pub.origin, trace[i].pub.point);
  }

  const BrokerStats& ps = primary.stats();
  std::printf("\nserved %llu commands (%llu publishes, %llu refreshes); "
              "journal holds %zu bytes\n",
              (unsigned long long)ps.commands_applied,
              (unsigned long long)ps.publishes,
              (unsigned long long)ps.refreshes, journal.str().size());
  std::printf("primary  seq %llu  digest %016llx\n",
              (unsigned long long)primary.seq(),
              (unsigned long long)primary.state_digest());
  std::printf("standby  seq %llu  digest %016llx\n",
              (unsigned long long)standby.seq(),
              (unsigned long long)standby.broker().state_digest());

  // --- the primary "crashes" -------------------------------------------
  primary.set_record_listener({});  // the stream is gone with it
  std::unique_ptr<Broker> promoted = std::move(standby).promote();
  std::printf("\nprimary lost; standby promoted at seq %llu\n",
              (unsigned long long)promoted->seq());

  // Cold restart from the durable artifacts agrees with the promotion.
  std::ostringstream snap_text;
  primary.write_snapshot(snap_text);
  std::istringstream snap_in(snap_text.str());
  const BrokerSnapshot snap = ReadBrokerSnapshot(snap_in);
  std::istringstream journal_in(journal.str());
  const JournalFile jf = ReadJournal(journal_in);
  const auto restarted =
      Broker::Recover(snap, jf.records, *s.pub, s.net.graph, opts);
  std::printf("cold restart from snapshot(seq %llu) + %zu journal records: "
              "seq %llu  digest %016llx\n",
              (unsigned long long)snap.seq, jf.records.size(),
              (unsigned long long)restarted->seq(),
              (unsigned long long)restarted->state_digest());

  // Probe all three with the same publication at the same instant.
  primary_clock.advance(5.0);
  standby_clock.advance_to(primary_clock.now_ms());
  const TraceEvent& probe = trace.front();
  const PublishOutcome a = primary.publish(probe.pub.origin, probe.pub.point);
  const PublishOutcome b = promoted->publish(probe.pub.origin, probe.pub.point);
  const bool identical =
      a.group_id == b.group_id &&
      std::ranges::equal(a.unicast_targets, b.unicast_targets) &&
      std::ranges::equal(a.timing.latencies_ms, b.timing.latencies_ms) &&
      primary.state_digest() == promoted->state_digest();
  std::printf("\nprobe publish on the (ghost) primary and the promoted "
              "standby:\n  group %d vs %d, %zu vs %zu unicast targets -> %s\n",
              a.group_id, b.group_id, a.unicast_targets.size(),
              b.unicast_targets.size(),
              identical ? "bit-identical" : "DIVERGED");
  std::printf("\nno subscriber missed an event: every command the primary "
              "applied reached the\nstandby through the stream, and the "
              "journal tail replays the rest after a cold\nrestart — state "
              "is snapshot + sequenced updates, nothing more.\n");
  return identical ? 0 : 1;
}
