// Stock-market deployment study (the paper's §5 scenario, end to end).
//
// Builds the 600-node three-block network, generates {bst, name, quote,
// volume} subscriptions with block-regional name interest, then compares
// every clustering algorithm — including No-Loss — against the unicast /
// broadcast / ideal baselines under both network-supported and
// application-level multicast, for each publication hot-spot scenario.
//
// Run:  ./stock_market [--subs=1000] [--groups=100] [--events=300]
//                      [--seed=7] [--cells=6000] [--modes=1|4|9|all]
#include <cstdio>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/grid.h"
#include "core/matching.h"
#include "core/noloss.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/table.h"
#include "obs/clock.h"

namespace {

using namespace pubsub;

void RunScenario(PublicationHotSpots spots, const Flags& flags) {
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto subs = static_cast<int>(flags.get_int("subs", 1000));
  const auto num_events = static_cast<std::size_t>(flags.get_int("events", 300));
  const auto K = static_cast<std::size_t>(flags.get_int("groups", 100));
  const auto max_cells = static_cast<std::size_t>(flags.get_int("cells", 6000));

  Scenario s = MakeStockScenario(subs, spots, seed);
  DeliverySimulator sim(s.net.graph, s.workload);
  Grid grid(s.workload, *s.pub);
  Rng event_rng(seed + 1);
  const auto events = SampleEvents(sim, *s.pub, num_events, event_rng);
  BaselineCosts base = EvaluateBaselines(sim, events, /*with_applevel_ideal=*/true);

  std::printf("=== %d-mode publications, %d subscribers, K=%zu ===\n",
              static_cast<int>(spots), subs, K);
  std::printf("baselines over %zu events: unicast=%.0f broadcast=%.0f "
              "ideal=%.0f ideal(app)=%.0f\n\n",
              events.size(), base.unicast, base.broadcast, base.ideal, base.ideal_app);

  TextTable table({"algorithm", "cluster_s", "net cost", "net improv%",
                   "app cost", "app improv%", "wasted msgs"});
  for (const GridAlgorithm& algo : StandardGridAlgorithms()) {
    const std::size_t budget = algo.name == "pairs" || algo.name == "approx-pairs"
                                   ? std::min<std::size_t>(max_cells, 2000)
                                   : max_cells;
    const std::vector<ClusterCell> cells = grid.top_cells(budget);
    Rng rng(seed + 2);
    StopwatchClock watch;
    const Assignment assignment = algo.run(cells, K, rng);
    const double secs = watch.elapsed_seconds();
    const GridMatcher matcher(grid, assignment, static_cast<int>(K));
    const ClusteredCosts c = EvaluateMatcher(sim, events, MatcherFn(matcher));
    table.row()
        .cell(algo.name)
        .cell(secs, 2)
        .cell(c.network, 0)
        .cell(ImprovementPercent(c.network, base), 1)
        .cell(c.applevel, 0)
        .cell(ImprovementPercent(c.applevel, base), 1)
        .cell(c.wasted_deliveries);
  }

  {
    StopwatchClock watch;
    const NoLossResult noloss = NoLossCluster(s.workload, *s.pub);
    const double secs = watch.elapsed_seconds();
    const NoLossMatcher matcher(noloss, K);
    const ClusteredCosts c = EvaluateMatcher(sim, events, MatcherFn(matcher));
    table.row()
        .cell("no-loss")
        .cell(secs, 2)
        .cell(c.network, 0)
        .cell(ImprovementPercent(c.network, base), 1)
        .cell(c.applevel, 0)
        .cell(ImprovementPercent(c.applevel, base), 1)
        .cell(c.wasted_deliveries);
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  ConfigureThreadsFromFlags(flags);
  const std::string modes = flags.get("modes", "1");
  if (modes == "all" || modes == "1") RunScenario(PublicationHotSpots::kOne, flags);
  if (modes == "all" || modes == "4") RunScenario(PublicationHotSpots::kFour, flags);
  if (modes == "all" || modes == "9") RunScenario(PublicationHotSpots::kNine, flags);
  return 0;
}
